// Tests of the Scenario/Session facade: fluent building, contender
// policy re-derivation, legacy-wrapper equivalence (bit-identical at
// every jobs value), and config sweeps whose grid points equal
// standalone campaigns.
#include "core/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "engine/progress.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/config.h"

namespace rrb {
namespace {

Program test_scua() {
    return make_autobench(Autobench::kTblook, 0x0100'0000, 40, 2);
}

Scenario small_scenario(std::uint64_t seed = 7, std::size_t runs = 6) {
    return Scenario::on(MachineConfig::ngmp_ref())
        .scua(test_scua())
        .rsk_contenders(OpKind::kLoad)
        .runs(runs)
        .seed(seed);
}

// ------------------------------------------------------------ Scenario

TEST(Scenario, FluentBuildersFillTheProtocol) {
    const Scenario s = Scenario::on(MachineConfig::ngmp_ref())
                           .scua(test_scua())
                           .runs(123)
                           .seed(9)
                           .max_start_delay(41)
                           .max_cycles(5'000'000);
    EXPECT_EQ(s.run_protocol().runs, 123u);
    EXPECT_EQ(s.run_protocol().seed, 9u);
    EXPECT_EQ(s.run_protocol().max_start_delay, 41u);
    EXPECT_EQ(s.run_protocol().max_cycles_per_run, 5'000'000u);
    EXPECT_TRUE(s.has_scua());
}

TEST(Scenario, DefaultContenderPolicyIsLoadRsk) {
    const Scenario s = small_scenario();
    const std::vector<Program> expected =
        make_rsk_contenders(s.config(), OpKind::kLoad);
    const std::vector<Program> actual = s.contender_programs();
    ASSERT_EQ(actual.size(), expected.size());
    ASSERT_FALSE(actual.empty());
    EXPECT_EQ(actual[0].body.size(),
              expected[0].body.size());
}

TEST(Scenario, RskPolicyRederivesOnRetarget) {
    // The rsk kernel is built against the config's DL1 geometry (W+1
    // loads per set), so re-targeting at a platform with a different
    // DL1 must rebuild it — which the policy does and an explicit
    // contender list must not.
    const Scenario base = small_scenario();
    MachineConfig other = MachineConfig::ngmp_ref();
    other.core.dl1_geometry.ways = 8;  // W+1 = 9 loads per group
    const Scenario re = base.with_config(other);
    const std::vector<Program> expected =
        make_rsk_contenders(other, OpKind::kLoad);
    ASSERT_EQ(re.contender_programs().size(), expected.size());
    EXPECT_EQ(re.contender_programs()[0].body.size(),
              expected[0].body.size());
    EXPECT_NE(re.contender_programs()[0].body.size(),
              base.contender_programs()[0].body.size());
    // The protocol rides along unchanged.
    EXPECT_EQ(re.run_protocol().seed, base.run_protocol().seed);
}

TEST(Scenario, ExplicitContendersSurviveRetarget) {
    const std::vector<Program> fixed = {test_scua()};
    const Scenario s = small_scenario().contenders(fixed);
    const Scenario re = s.with_config(MachineConfig::scaled(8, 9));
    EXPECT_EQ(re.contender_programs().size(), 1u);
}

TEST(Scenario, ValidateRejectsIncompleteScenarios) {
    EXPECT_THROW(Scenario::on(MachineConfig::ngmp_ref()).validate(),
                 std::invalid_argument);  // no scua
    EXPECT_THROW(small_scenario().runs(0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(
        small_scenario().contenders({}).validate(),
        std::invalid_argument);
}

// ----------------------------------------- Session vs legacy campaigns

TEST(Session, HwmIsBitIdenticalToLegacyCampaignAcrossSeedsAndJobs) {
    // Property over (seed, runs): the facade, the legacy free function
    // and a hand-rolled serial fold of the shared run primitive all
    // observe the same numbers — at one worker and at four.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);

    for (const std::uint64_t seed : {1ull, 23ull}) {
        for (const std::size_t runs : {4u, 7u}) {
            HwmCampaignOptions opt;
            opt.runs = runs;
            opt.seed = seed;

            // Independent serial reference.
            std::vector<Cycle> reference;
            for (std::uint64_t run = 0; run < runs; ++run) {
                reference.push_back(detail::hwm_campaign_run(
                    cfg, scua, contenders, opt, run));
            }

            const HwmCampaignResult legacy =
                run_hwm_campaign(cfg, scua, contenders, opt);
            EXPECT_EQ(legacy.exec_times, reference)
                << "seed " << seed << " runs " << runs;

            for (const std::size_t jobs : {1u, 4u}) {
                Session session;
                session.jobs(jobs);
                const HwmCampaignResult facade = session.hwm(
                    Scenario::on(cfg).scua(scua).contenders(contenders)
                        .protocol(opt));
                EXPECT_EQ(facade.exec_times, reference)
                    << "seed " << seed << " runs " << runs << " jobs "
                    << jobs;
                EXPECT_EQ(facade.high_water_mark, legacy.high_water_mark);
                EXPECT_EQ(facade.low_water_mark, legacy.low_water_mark);
                EXPECT_EQ(facade.et_isolation, legacy.et_isolation);
                EXPECT_EQ(facade.nr, legacy.nr);
            }
        }
    }
}

TEST(Session, PwcetMatchesEngineEntryPoint) {
    const Scenario scenario = small_scenario(/*seed=*/7, /*runs=*/48);
    PwcetSpec spec;
    spec.block_size = 8;
    spec.exceedance = {1e-6};

    Session session;
    session.jobs(4);
    const PwcetCampaignResult facade = session.pwcet(scenario, spec);

    PwcetCampaignOptions options;
    options.protocol = scenario.run_protocol();
    options.block_size = spec.block_size;
    options.exceedance = spec.exceedance;
    const PwcetCampaignResult engine = engine::run_pwcet_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), options);

    EXPECT_EQ(facade.high_water_mark, engine.high_water_mark);
    EXPECT_EQ(facade.mean, engine.mean);
    EXPECT_EQ(facade.stddev, engine.stddev);
    EXPECT_EQ(facade.fit.mu, engine.fit.mu);
    EXPECT_EQ(facade.fit.beta, engine.fit.beta);
    ASSERT_EQ(facade.quantiles.size(), engine.quantiles.size());
    EXPECT_EQ(facade.quantiles[0].pwcet, engine.quantiles[0].pwcet);
}

TEST(Session, WhiteboxMatchesEngineEntryPoint) {
    const Scenario scenario = small_scenario(/*seed=*/5, /*runs=*/8);
    Session session;
    session.jobs(2);
    const engine::WhiteboxCampaignResult facade =
        session.whitebox(scenario);
    const engine::WhiteboxCampaignResult reference =
        engine::run_whitebox_campaign(scenario.config(),
                                      scenario.scua_program(),
                                      scenario.contender_programs(),
                                      scenario.run_protocol());
    EXPECT_EQ(facade.stats.runs(), reference.stats.runs());
    EXPECT_EQ(facade.stats.max_gamma(), reference.stats.max_gamma());
    EXPECT_EQ(facade.stats.exec_times().values(),
              reference.stats.exec_times().values());
}

TEST(Session, SingleRunEntryPointsMatchTheFreeFunctions) {
    const Scenario scenario = small_scenario();
    const Session session;
    const Measurement isol = session.isolation(scenario);
    const Measurement ref = run_isolation(
        scenario.config(), scenario.scua_program(), 0,
        scenario.run_protocol().max_cycles_per_run);
    EXPECT_EQ(isol.exec_time, ref.exec_time);
    EXPECT_EQ(isol.bus_requests, ref.bus_requests);

    const SlowdownResult slow = session.slowdown(scenario);
    EXPECT_EQ(slow.isolation.exec_time, isol.exec_time);
    EXPECT_GE(slow.contention.exec_time, slow.isolation.exec_time);
}

TEST(Session, JobsBudgetIsFrozenByTheFirstCampaign) {
    Session session;
    session.jobs(2);
    (void)session.hwm(small_scenario());
    EXPECT_THROW(session.jobs(4), std::invalid_argument);
}

// ---------------------------------------------------------------- sweep

TEST(Session, SweepEnumeratesTheCrossProductInAxisOrder) {
    const Scenario scenario = small_scenario(/*seed=*/3, /*runs=*/4);
    SweepAxes axes;
    axes.cores = {2, 4};
    axes.lbus = {5, 9};
    EXPECT_EQ(axes.points(), 4u);

    engine::ProgressCounter progress;
    Session session;
    session.jobs(2).progress(&progress);
    const SweepResult sweep = session.sweep(scenario, axes);

    ASSERT_EQ(sweep.points.size(), 4u);
    // cores-major, then lbus.
    EXPECT_EQ(sweep.points[0].cores, 2u);
    EXPECT_EQ(sweep.points[0].lbus, 5u);
    EXPECT_EQ(sweep.points[1].cores, 2u);
    EXPECT_EQ(sweep.points[1].lbus, 9u);
    EXPECT_EQ(sweep.points[3].cores, 4u);
    EXPECT_EQ(sweep.points[3].lbus, 9u);
    // Axis values landed in the derived configs.
    EXPECT_EQ(sweep.points[0].config.num_cores, 2u);
    EXPECT_EQ(sweep.points[0].config.load_hit_service(), 5u);
    // Progress ticked per grid point.
    EXPECT_EQ(progress.total(), 4u);
    EXPECT_EQ(progress.completed(), 4u);
}

TEST(Session, SweepGridPointEqualsStandalonePwcet) {
    // Each grid point must be bit-identical to a standalone streamed
    // campaign at the same config, protocol and spec — nesting on the
    // shared pool is an execution detail, never a statistics change.
    const Scenario scenario = small_scenario(/*seed=*/11, /*runs=*/32);
    PwcetSpec spec;
    spec.block_size = 8;
    spec.exceedance = {1e-3, 1e-6};
    SweepAxes axes;
    axes.cores = {2, 4};
    axes.lbus = {5};

    Session sweep_session;
    sweep_session.jobs(4);
    const SweepResult sweep = sweep_session.sweep(scenario, axes, spec);
    ASSERT_EQ(sweep.points.size(), 2u);

    for (const SweepPoint& point : sweep.points) {
        Session standalone;
        standalone.jobs(1);
        const PwcetCampaignResult reference = standalone.pwcet(
            scenario.with_config(point.config), spec);
        EXPECT_EQ(point.result.high_water_mark, reference.high_water_mark);
        EXPECT_EQ(point.result.low_water_mark, reference.low_water_mark);
        EXPECT_EQ(point.result.et_isolation, reference.et_isolation);
        EXPECT_EQ(point.result.nr, reference.nr);
        EXPECT_EQ(point.result.mean, reference.mean);
        EXPECT_EQ(point.result.stddev, reference.stddev);
        EXPECT_EQ(point.result.fit.mu, reference.fit.mu);
        EXPECT_EQ(point.result.fit.beta, reference.fit.beta);
        ASSERT_EQ(point.result.quantiles.size(),
                  reference.quantiles.size());
        for (std::size_t q = 0; q < reference.quantiles.size(); ++q) {
            EXPECT_EQ(point.result.quantiles[q].pwcet,
                      reference.quantiles[q].pwcet);
        }
    }
}

TEST(Session, SweepIsBitIdenticalAtEveryJobsValue) {
    const Scenario scenario = small_scenario(/*seed=*/13, /*runs=*/16);
    PwcetSpec spec;
    spec.block_size = 4;
    SweepAxes axes;
    axes.cores = {2, 4};

    Session serial;
    serial.jobs(1);
    const SweepResult reference = serial.sweep(scenario, axes, spec);

    for (const std::size_t jobs : {2u, 8u}) {
        Session session;
        session.jobs(jobs);
        const SweepResult sweep = session.sweep(scenario, axes, spec);
        ASSERT_EQ(sweep.points.size(), reference.points.size());
        for (std::size_t i = 0; i < sweep.points.size(); ++i) {
            EXPECT_EQ(sweep.points[i].result.high_water_mark,
                      reference.points[i].result.high_water_mark)
                << "jobs " << jobs << " point " << i;
            EXPECT_EQ(sweep.points[i].result.mean,
                      reference.points[i].result.mean);
            EXPECT_EQ(sweep.points[i].result.fit.mu,
                      reference.points[i].result.fit.mu);
        }
    }
}

TEST(Session, SweepArbiterAxisBuildsValidConfigs) {
    const Scenario scenario = small_scenario(/*seed=*/2, /*runs=*/4);
    SweepAxes axes;
    axes.arbiters = {ArbiterKind::kRoundRobin, ArbiterKind::kTdma,
                     ArbiterKind::kWeightedRoundRobin};
    Session session;
    session.jobs(2);
    const SweepResult sweep = session.sweep(scenario, axes);
    ASSERT_EQ(sweep.points.size(), 3u);
    EXPECT_EQ(sweep.points[0].arbiter, ArbiterKind::kRoundRobin);
    EXPECT_EQ(sweep.points[1].arbiter, ArbiterKind::kTdma);
    EXPECT_EQ(sweep.points[2].arbiter, ArbiterKind::kWeightedRoundRobin);
    for (const SweepPoint& point : sweep.points) {
        EXPECT_EQ(point.result.runs, 4u);
        EXPECT_GT(point.result.high_water_mark, 0u);
    }
}

}  // namespace
}  // namespace rrb
