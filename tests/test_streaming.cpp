// Tests of the streaming accumulators: shard-merge laws, exactness of
// extremes/block maxima, and Chan-merged moments vs the two-pass
// reference.
#include "stats/streaming.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/series.h"

namespace rrb {
namespace {

std::vector<double> uniform_sample(std::size_t n, std::uint64_t seed,
                                   double lo = 0.0, double hi = 1000.0) {
    Pcg32 rng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(lo + rng.next_double() * (hi - lo));
    }
    return xs;
}

// -------------------------------------------------- StreamingExtremes

TEST(StreamingExtremes, TracksMinMaxCount) {
    StreamingExtremes<Cycle> ext;
    EXPECT_TRUE(ext.empty());
    EXPECT_THROW((void)ext.min(), std::invalid_argument);
    ext.add(7);
    ext.add(3);
    ext.add(11);
    EXPECT_EQ(ext.count(), 3u);
    EXPECT_EQ(ext.min(), 3u);
    EXPECT_EQ(ext.max(), 11u);
}

TEST(StreamingExtremes, MergeEqualsSequentialFold) {
    StreamingExtremes<Cycle> a;
    StreamingExtremes<Cycle> b;
    StreamingExtremes<Cycle> serial;
    for (const Cycle x : {9u, 2u, 5u}) {
        a.add(x);
        serial.add(x);
    }
    for (const Cycle x : {1u, 14u}) {
        b.add(x);
        serial.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.min(), serial.min());
    EXPECT_EQ(a.max(), serial.max());
    EXPECT_EQ(a.count(), serial.count());

    StreamingExtremes<Cycle> empty;
    a.merge(empty);  // identity
    EXPECT_EQ(a.count(), 5u);
    empty.merge(a);  // merge into empty copies
    EXPECT_EQ(empty.max(), 14u);
}

// --------------------------------------------------- StreamingMoments

TEST(StreamingMoments, MatchesTwoPassToTolerance) {
    const std::vector<double> xs = uniform_sample(5000, 42);
    StreamingMoments m;
    for (const double x : xs) m.add(x);
    const SeriesSummary s = summarize(xs);
    ASSERT_EQ(m.count(), xs.size());
    // Satellite contract: streamed moments match the two-pass reference
    // to 1e-12 (relative; values are O(10^3)).
    EXPECT_NEAR(m.mean(), s.mean, 1e-12 * std::abs(s.mean));
    EXPECT_NEAR(m.stddev(), s.stddev, 1e-12 * s.mean);
}

TEST(StreamingMoments, ChanMergeMatchesTwoPass) {
    const std::vector<double> xs = uniform_sample(4096, 7);
    // Fold in 8 shards of contiguous ranges, merge in shard order.
    StreamingMoments merged;
    const std::size_t shard = xs.size() / 8;
    for (std::size_t s = 0; s < 8; ++s) {
        StreamingMoments part;
        for (std::size_t i = s * shard; i < (s + 1) * shard; ++i) {
            part.add(xs[i]);
        }
        merged.merge(part);
    }
    const SeriesSummary ref = summarize(xs);
    EXPECT_EQ(merged.count(), xs.size());
    EXPECT_NEAR(merged.mean(), ref.mean, 1e-12 * std::abs(ref.mean));
    EXPECT_NEAR(merged.stddev(), ref.stddev, 1e-12 * ref.mean);
}

TEST(StreamingMoments, EmptyAndSingleton) {
    StreamingMoments m;
    EXPECT_TRUE(m.empty());
    EXPECT_DOUBLE_EQ(m.variance(), 0.0);
    m.add(5.0);
    EXPECT_DOUBLE_EQ(m.mean(), 5.0);
    EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
    StreamingMoments other;
    m.merge(other);  // empty other is identity
    EXPECT_EQ(m.count(), 1u);
}

// ----------------------------------------------- StreamingBlockMaxima

TEST(StreamingBlockMaxima, MatchesSerialBlockMaxima) {
    const std::vector<double> xs = uniform_sample(1003, 9);  // partial tail
    StreamingBlockMaxima stream(50);
    for (std::size_t i = 0; i < xs.size(); ++i) stream.add(i, xs[i]);
    EXPECT_EQ(stream.maxima(), block_maxima(xs, 50));
    EXPECT_EQ(stream.complete_blocks(), 20u);
    EXPECT_EQ(stream.live_values(), 21u);  // 20 complete + the tail
    EXPECT_EQ(stream.count(), xs.size());
}

TEST(StreamingBlockMaxima, ShardedMergeIsBitIdenticalToSerialFit) {
    const std::vector<double> xs = uniform_sample(600, 11);
    const GumbelFit serial = fit_gumbel(block_maxima(xs, 30));

    // Shard boundaries that split blocks mid-way (97 is coprime to 30).
    for (const std::size_t shard_size : {97u, 30u, 601u, 1u}) {
        StreamingBlockMaxima merged(30);
        for (std::size_t begin = 0; begin < xs.size();
             begin += shard_size) {
            StreamingBlockMaxima part(30);
            const std::size_t end =
                std::min(xs.size(), begin + shard_size);
            for (std::size_t i = begin; i < end; ++i) part.add(i, xs[i]);
            merged.merge(part);
        }
        const GumbelFit fit = merged.fit();
        EXPECT_EQ(fit.mu, serial.mu) << "shard size " << shard_size;
        EXPECT_EQ(fit.beta, serial.beta);
        EXPECT_EQ(fit.sample_size, serial.sample_size);
    }
}

TEST(StreamingBlockMaxima, OutOfOrderAddsMatchInOrderAdds) {
    const std::vector<double> xs = uniform_sample(90, 3);
    StreamingBlockMaxima forward(9);
    StreamingBlockMaxima backward(9);
    for (std::size_t i = 0; i < xs.size(); ++i) forward.add(i, xs[i]);
    for (std::size_t i = xs.size(); i-- > 0;) backward.add(i, xs[i]);
    EXPECT_EQ(forward.maxima(), backward.maxima());
}

TEST(StreamingBlockMaxima, Validates) {
    EXPECT_THROW(StreamingBlockMaxima(0), std::invalid_argument);
    StreamingBlockMaxima a(4);
    StreamingBlockMaxima b(5);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --------------------------------------------------- PwcetAccumulator

Measurement exec_only(Cycle t) {
    Measurement m;
    m.exec_time = t;
    return m;
}

TEST(PwcetAccumulator, FoldsExtremesMomentsAndBlocks) {
    PwcetAccumulator acc(2);
    acc.add(0, exec_only(10));
    acc.add(1, exec_only(30));
    acc.add(2, exec_only(20));
    acc.add(3, exec_only(20));
    EXPECT_EQ(acc.extremes().max(), 30u);
    EXPECT_EQ(acc.extremes().min(), 10u);
    EXPECT_DOUBLE_EQ(acc.moments().mean(), 20.0);
    EXPECT_EQ(acc.blocks().maxima(), (std::vector<double>{30.0, 20.0}));
}

TEST(PwcetAccumulator, MergeMatchesSequential) {
    const std::vector<Cycle> ts = {5, 9, 1, 7, 3, 8, 2, 6};
    PwcetAccumulator serial(2);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        serial.add(i, exec_only(ts[i]));
    }
    PwcetAccumulator left(2);
    PwcetAccumulator right(2);
    for (std::size_t i = 0; i < 3; ++i) left.add(i, exec_only(ts[i]));
    for (std::size_t i = 3; i < ts.size(); ++i) {
        right.add(i, exec_only(ts[i]));
    }
    left.merge(right);
    EXPECT_EQ(left.extremes().max(), serial.extremes().max());
    EXPECT_EQ(left.blocks().maxima(), serial.blocks().maxima());
    EXPECT_EQ(left.moments().count(), serial.moments().count());
}

// ------------------------------------------------ WhiteboxAccumulator

Measurement whitebox_sample(Cycle t, std::uint64_t gamma_value) {
    Measurement m;
    m.exec_time = t;
    m.max_gamma = gamma_value;
    m.gamma.add(gamma_value, 2);
    m.ready_contenders.add(gamma_value % 3);
    m.injection_delta.add(gamma_value + 1);
    return m;
}

TEST(PeaksOverThreshold, KeepsOnlyExceedancesInFoldOrder) {
    StreamingPeaksOverThreshold pot(100.0);
    pot.add(0, 50.0);
    pot.add(1, 150.0);
    pot.add(2, 100.0);  // equal to the threshold: not an exceedance
    pot.add(3, 275.0);
    EXPECT_EQ(pot.count(), 4u);
    EXPECT_EQ(pot.exceedance_count(), 2u);
    EXPECT_EQ(pot.exceedances(), (std::vector<double>{150.0, 275.0}));
    EXPECT_EQ(pot.excesses(), (std::vector<double>{50.0, 175.0}));
    EXPECT_DOUBLE_EQ(pot.exceedance_rate(), 0.5);
}

TEST(PeaksOverThreshold, EmptyStreamHasZeroRate) {
    const StreamingPeaksOverThreshold pot(1.0);
    EXPECT_EQ(pot.count(), 0u);
    EXPECT_DOUBLE_EQ(pot.exceedance_rate(), 0.0);
    EXPECT_TRUE(pot.exceedances().empty());
}

TEST(PeaksOverThreshold, MergeOfDisjointShardsEqualsSerialFold) {
    // The merge law the reduce engine relies on: folding a contiguous
    // later range into its own accumulator and merging equals one
    // serial fold — exceedances come out in run order.
    const std::vector<double> xs = uniform_sample(500, 99);
    const double threshold = 700.0;

    StreamingPeaksOverThreshold serial(threshold);
    for (std::size_t i = 0; i < xs.size(); ++i) serial.add(i, xs[i]);

    for (const std::size_t split : {1u, 123u, 250u, 499u}) {
        StreamingPeaksOverThreshold first(threshold);
        StreamingPeaksOverThreshold second(threshold);
        for (std::size_t i = 0; i < split; ++i) first.add(i, xs[i]);
        for (std::size_t i = split; i < xs.size(); ++i) {
            second.add(i, xs[i]);
        }
        first.merge(second);
        EXPECT_EQ(first.count(), serial.count()) << "split " << split;
        EXPECT_EQ(first.exceedances(), serial.exceedances())
            << "split " << split;
    }
}

TEST(PeaksOverThreshold, MergeRejectsMismatchedThresholds) {
    StreamingPeaksOverThreshold a(10.0);
    const StreamingPeaksOverThreshold b(20.0);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(PeaksOverThreshold, MeasurementOverloadFoldsExecTime) {
    StreamingPeaksOverThreshold pot(100.0);
    Measurement m;
    m.exec_time = 250;
    pot.add(0, m);
    m.exec_time = 90;
    pot.add(1, m);
    EXPECT_EQ(pot.count(), 2u);
    EXPECT_EQ(pot.exceedances(), (std::vector<double>{250.0}));
}

TEST(WhiteboxAccumulator, ShardMergeEqualsSerialFold) {
    std::vector<Measurement> ms;
    for (Cycle t = 0; t < 10; ++t) {
        ms.push_back(whitebox_sample(100 + t, t % 4));
    }
    WhiteboxAccumulator serial;
    for (std::size_t i = 0; i < ms.size(); ++i) serial.add(i, ms[i]);

    WhiteboxAccumulator a;
    WhiteboxAccumulator b;
    for (std::size_t i = 0; i < 4; ++i) a.add(i, ms[i]);
    for (std::size_t i = 4; i < ms.size(); ++i) b.add(i, ms[i]);
    a.merge(b);

    EXPECT_EQ(a.runs(), serial.runs());
    EXPECT_EQ(a.max_gamma(), serial.max_gamma());
    EXPECT_EQ(a.gamma().buckets(), serial.gamma().buckets());
    EXPECT_EQ(a.ready_contenders().buckets(),
              serial.ready_contenders().buckets());
    EXPECT_EQ(a.injection_delta().buckets(),
              serial.injection_delta().buckets());
    // Shard-order merge reconstructs run order.
    EXPECT_EQ(a.exec_times().values(), serial.exec_times().values());
    EXPECT_EQ(a.extremes().max(), serial.extremes().max());
}

}  // namespace
}  // namespace rrb
