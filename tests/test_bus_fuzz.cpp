// Property tests: randomized traffic against the bus invariants.
//
// For seeded-random request streams across many shapes (core counts,
// durations, arbiters) the bus must uphold:
//   * every posted request completes exactly once;
//   * completion = grant + duration, grant >= ready;
//   * transactions never overlap in time;
//   * under round-robin, no request waits longer than
//     (Nc - 1) * max_duration — Equation 1 as a hard invariant;
//   * busy-cycle accounting is exact.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bus/bus.h"
#include "sim/rng.h"

namespace rrb {
namespace {

struct FuzzParams {
    CoreId cores;
    Cycle max_duration;
    std::uint64_t seed;
};

class BusFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(BusFuzz, InvariantsHoldUnderRandomTraffic) {
    const FuzzParams params = GetParam();
    Bus bus(params.cores,
            std::make_unique<RoundRobinArbiter>(params.cores));
    Pcg32 rng(params.seed);

    struct Completion {
        Cycle ready;
        Cycle duration;
        Cycle completion;
    };
    // The fixed client sees each finished request with its original
    // fields, which carry everything the invariants need.
    struct Client final : BusClient {
        std::vector<Completion> completions;
        std::vector<bool> pending;
        std::uint64_t completed = 0;
        void bus_complete(const BusRequest& r, Cycle completion) override {
            completions.push_back({r.ready, r.duration, completion});
            pending[r.core] = false;
            ++completed;
        }
    } client;
    client.pending.assign(params.cores, false);
    bus.attach_client(&client);
    std::uint64_t posted = 0;
    std::uint64_t expected_busy = 0;

    const Cycle horizon = 20000;
    for (Cycle now = 0; now < horizon; ++now) {
        bus.complete_phase(now);
        // Randomly post new requests on idle cores (leave tail room so
        // everything drains before the horizon).
        for (CoreId c = 0; c < params.cores; ++c) {
            if (client.pending[c] || now > horizon - 400) continue;
            if (!rng.next_bool(0.3)) continue;
            const Cycle duration =
                1 + rng.next_below(
                        static_cast<std::uint32_t>(params.max_duration));
            const Cycle ready = now + rng.next_below(4);
            ++posted;
            expected_busy += duration;
            client.pending[c] = true;
            bus.post({c, BusOp::kDataLoad, 0x40u * c, ready, duration, 0});
        }
        bus.arbitrate_phase(now);
    }
    const std::vector<Completion>& completions = client.completions;
    const std::uint64_t completed = client.completed;

    ASSERT_GT(posted, 100u);
    EXPECT_EQ(completed, posted);  // nothing lost, nothing duplicated

    // Per-completion invariants.
    const Cycle ubd_bound = (params.cores - 1) * params.max_duration;
    for (const Completion& c : completions) {
        const Cycle grant = c.completion - c.duration;
        EXPECT_GE(grant, c.ready);
        EXPECT_LE(grant - c.ready, ubd_bound)
            << "a request waited longer than (Nc-1)*max_duration";
    }

    // Busy accounting: the sum of durations equals the counter.
    EXPECT_EQ(bus.total_busy_cycles(), expected_busy);

    // Non-overlap: reconstruct intervals from per-core counters is not
    // possible, so assert global occupancy fits in the horizon instead.
    EXPECT_LE(bus.total_busy_cycles(), horizon);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BusFuzz,
    ::testing::Values(FuzzParams{2, 3, 1}, FuzzParams{2, 9, 2},
                      FuzzParams{4, 2, 3}, FuzzParams{4, 9, 4},
                      FuzzParams{4, 9, 5}, FuzzParams{8, 5, 6},
                      FuzzParams{8, 13, 7}, FuzzParams{3, 7, 8}));

TEST(BusFuzzFifoOrder, PerCoreCompletionsAreFifo) {
    // A single core's requests must complete in post order (one
    // outstanding at a time enforces this structurally; the delivery
    // order must agree). Tags ride BusRequest::tag.
    Bus bus(2, std::make_unique<RoundRobinArbiter>(2));
    struct Client final : BusClient {
        std::vector<std::uint64_t> order;
        bool busy = false;
        void bus_complete(const BusRequest& r, Cycle) override {
            order.push_back(r.tag);
            busy = false;
        }
    } client;
    bus.attach_client(&client);
    Pcg32 rng(99);
    std::uint64_t next_tag = 0;
    for (Cycle now = 0; now < 2000; ++now) {
        bus.complete_phase(now);
        if (!client.busy && rng.next_bool(0.5)) {
            client.busy = true;
            bus.post({0, BusOp::kDataLoad, 0, now, 1 + rng.next_below(5),
                      next_tag++});
        }
        bus.arbitrate_phase(now);
    }
    for (std::size_t i = 0; i < client.order.size(); ++i) {
        EXPECT_EQ(client.order[i], i);
    }
}

TEST(BusFuzzStarvation, RoundRobinServesEveryoneUnderSaturation) {
    // All cores permanently re-posting: over any window of Nc*duration
    // grants, every core is served at least once.
    constexpr CoreId kCores = 4;
    Bus bus(kCores, std::make_unique<RoundRobinArbiter>(kCores));
    struct Client final : BusClient {
        std::vector<std::uint64_t> grants;
        std::vector<bool> pending;
        void bus_complete(const BusRequest& r, Cycle) override {
            ++grants[r.core];
            pending[r.core] = false;
        }
    } client;
    client.grants.assign(kCores, 0);
    client.pending.assign(kCores, false);
    bus.attach_client(&client);

    auto repost = [&](CoreId c, Cycle ready) {
        client.pending[c] = true;
        bus.post({c, BusOp::kDataLoad, 0, ready, 3, 0});
    };
    for (CoreId c = 0; c < kCores; ++c) repost(c, 0);
    for (Cycle now = 0; now < 6000; ++now) {
        bus.complete_phase(now);
        for (CoreId c = 0; c < kCores; ++c) {
            if (!client.pending[c] && now < 5500) repost(c, now);
        }
        bus.arbitrate_phase(now);
    }
    const std::uint64_t min_grants =
        *std::min_element(client.grants.begin(), client.grants.end());
    const std::uint64_t max_grants =
        *std::max_element(client.grants.begin(), client.grants.end());
    EXPECT_GT(min_grants, 100u);
    EXPECT_LE(max_grants - min_grants, 2u);  // near-perfect fairness
}

}  // namespace
}  // namespace rrb
