// Tests for the DRAM extensions: refresh and the closed-page policy.
#include "dram/dram.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

/// Minimal completion recorder for the controller-direct tests.
struct RecordingClient final : DramClient {
    std::vector<Cycle> completions;
    int done = 0;
    void dram_complete(const DramRequest&, Cycle c) override {
        completions.push_back(c);
        ++done;
    }
};

DramConfig base_config() {
    DramConfig cfg;
    cfg.capacity_bytes = 1 << 20;
    return cfg;
}

TEST(DramRefresh, ValidationRules) {
    DramConfig cfg = base_config();
    cfg.refresh_interval = 100;
    cfg.refresh_duration = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.refresh_duration = 100;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.refresh_duration = 26;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(DramRefresh, BlocksBanksDuringRefresh) {
    DramConfig cfg = base_config();
    cfg.refresh_interval = 100;
    cfg.refresh_duration = 30;
    MemoryController mc(cfg);
    RecordingClient client;
    mc.attach_client(&client);

    // Request arriving exactly at the refresh boundary waits out tRFC.
    mc.enqueue({0, 0x0, false, 100, 0});
    for (Cycle now = 0; now <= 200; ++now) mc.tick(now);

    const std::vector<Cycle>& completions = client.completions;
    ASSERT_EQ(completions.size(), 1u);
    const DramTiming t;
    // Issue at 130 (refresh end), row closed by refresh -> ACT path.
    EXPECT_EQ(completions[0],
              130 + t.t_overhead + t.t_rcd + t.t_cl + t.t_burst);
    EXPECT_EQ(mc.stats().refreshes, 2u);  // at 100 and 200
}

TEST(DramRefresh, ClosesOpenRows) {
    DramConfig cfg = base_config();
    cfg.refresh_interval = 1000;
    cfg.refresh_duration = 26;
    MemoryController mc(cfg);
    int row_hits_after = -1;

    mc.enqueue({0, 0x0, false, 0, 0});  // opens row 0
    for (Cycle now = 0; now <= 999; ++now) mc.tick(now);
    // Same row again, but after the refresh at 1000 it must be a miss.
    mc.enqueue({0, 0x0, false, 1001, 0});
    for (Cycle now = 1000; now <= 1100; ++now) mc.tick(now);
    row_hits_after = static_cast<int>(mc.stats().row_hits);
    EXPECT_EQ(row_hits_after, 0);
    EXPECT_EQ(mc.stats().row_misses, 2u);
}

TEST(DramClosedPage, EveryAccessPaysActivation) {
    DramConfig cfg = base_config();
    cfg.page_policy = PagePolicy::kClosedPage;
    MemoryController mc(cfg);
    RecordingClient client;
    mc.attach_client(&client);
    mc.enqueue({0, 0x0, false, 0, 0});
    for (Cycle now = 0; now <= 40; ++now) mc.tick(now);
    mc.enqueue({0, 0x0 + 32 * 4, false, 41, 0});  // same row!
    for (Cycle now = 41; now <= 90; ++now) mc.tick(now);

    const std::vector<Cycle>& completions = client.completions;
    ASSERT_EQ(completions.size(), 2u);
    const DramTiming t;
    const Cycle flat = t.t_overhead + t.t_rcd + t.t_cl + t.t_burst;
    EXPECT_EQ(completions[0], flat);
    EXPECT_EQ(completions[1], 41 + flat);  // no row-hit discount
    EXPECT_EQ(mc.stats().row_hits, 0u);
    EXPECT_EQ(mc.stats().row_misses, 2u);
}

TEST(DramClosedPage, BankBusyIncludesPrecharge) {
    DramConfig cfg = base_config();
    cfg.page_policy = PagePolicy::kClosedPage;
    MemoryController mc(cfg);
    RecordingClient client;
    mc.attach_client(&client);
    // Two back-to-back accesses to the SAME bank: the second waits the
    // auto-precharge tRP on top of the first access.
    mc.enqueue({0, 0x0, false, 0, 0});
    mc.enqueue({0, 0x0 + 32 * 4, false, 0, 0});
    for (Cycle now = 0; now <= 80; ++now) mc.tick(now);

    const std::vector<Cycle>& completions = client.completions;
    ASSERT_EQ(completions.size(), 2u);
    const DramTiming t;
    const Cycle flat = t.t_overhead + t.t_rcd + t.t_cl + t.t_burst;
    EXPECT_EQ(completions[0], flat);
    EXPECT_EQ(completions[1], flat + t.t_rp + flat);
}

TEST(DramClosedPage, NoRefreshInteractionCrash) {
    DramConfig cfg = base_config();
    cfg.page_policy = PagePolicy::kClosedPage;
    cfg.refresh_interval = 50;
    cfg.refresh_duration = 10;
    MemoryController mc(cfg);
    RecordingClient client;
    mc.attach_client(&client);
    for (int i = 0; i < 10; ++i) {
        mc.enqueue({0, static_cast<Addr>(i) * 32, false,
                    static_cast<Cycle>(i) * 7, 0});
    }
    for (Cycle now = 0; now <= 2000; ++now) mc.tick(now);
    EXPECT_EQ(client.done, 10);
    EXPECT_GT(mc.stats().refreshes, 10u);
}

}  // namespace
}  // namespace rrb
