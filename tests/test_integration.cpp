// Cross-module integration tests: the full pipeline a downstream user
// would run, plus the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include "core/rrb.h"

namespace rrb {
namespace {

TEST(Integration, FullMethodologyMatchesEquationOneOnBothSetups) {
    for (const bool variant : {false, true}) {
        const MachineConfig cfg =
            variant ? MachineConfig::ngmp_var() : MachineConfig::ngmp_ref();
        UbdEstimatorOptions opt;
        opt.k_max = 60;
        opt.unroll = 8;
        opt.rsk_iterations = 25;
        const UbdEstimate e = estimate_ubd(cfg, opt);
        ASSERT_TRUE(e.found);
        EXPECT_EQ(e.ubd, cfg.ubd_analytic());
        EXPECT_TRUE(e.confidence.saturated);
    }
}

TEST(Integration, MethodologyBeatsNaiveBaseline) {
    // The whole point of the paper: the rsk-nop estimate is exact where
    // the naive one is short.
    const MachineConfig cfg = MachineConfig::ngmp_var();
    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 8;
    opt.rsk_iterations = 25;
    const UbdEstimate ours = estimate_ubd(cfg, opt);
    const NaiveUbdm naive = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 60);
    ASSERT_TRUE(ours.found);
    EXPECT_EQ(ours.ubd, 27u);
    EXPECT_EQ(naive.ubdm_max_gamma, 23u);
    EXPECT_LT(naive.ubdm_max_gamma, ours.ubd);
}

TEST(Integration, EtbPaddingBoundsObservedWorstCase) {
    // MBTA usage (Section 4.3): ETB = et_isol + nr * ubdm must bound the
    // execution time under the harshest rsk contention.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 400, 11);
    const EtbResult etb =
        compute_and_validate_etb(cfg, scua, cfg.ubd_analytic());
    EXPECT_TRUE(etb.bounded());
    EXPECT_GE(etb.pessimism(), 1.0);
    EXPECT_GT(etb.nr, 0u);
    EXPECT_EQ(etb.etb, etb.et_isolation + etb.nr * 27u);
}

TEST(Integration, UnderestimatedUbdmCanMissTheBound) {
    // Using the naive ubdm (26) still bounds most programs, but the pad
    // is strictly smaller than with the true ubd — quantify the gap.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 200, 5);
    const EtbResult with_true = compute_and_validate_etb(cfg, scua, 27);
    const EtbResult with_naive = compute_and_validate_etb(cfg, scua, 26);
    EXPECT_LT(with_naive.etb, with_true.etb);
    EXPECT_EQ(with_true.etb - with_naive.etb, with_true.nr);
}

TEST(Integration, EembcWorkloadsSeeFewReadyContenders) {
    // Figure 6(a), dark bars: with real workloads the scua finds the bus
    // "empty or with one contender most of the times".
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const std::vector<Program> wl = random_autobench_workload(4, 21, 300);
    const Measurement m = run_contention(
        cfg, wl[0], {wl.begin() + 1, wl.end()}, 0, 200'000'000);
    ASSERT_FALSE(m.deadline_reached);
    ASSERT_FALSE(m.ready_contenders.empty());
    const double few = m.ready_contenders.fraction(0) +
                       m.ready_contenders.fraction(1);
    EXPECT_GE(few, 0.5);
}

TEST(Integration, RskWorkloadSeesAllContendersReady) {
    // Figure 6(a), light bars: 4 rsk -> on almost every request all other
    // cores are contending.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    p.iterations = 100;
    const Program scua = make_rsk(p);
    const Measurement m = run_contention(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), 0, 100'000'000);
    ASSERT_FALSE(m.deadline_reached);
    EXPECT_GE(m.ready_contenders.fraction(3), 0.95);
}

TEST(Integration, SaturationUtilizationNearOne) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    p.iterations = 150;
    const Measurement m = run_contention(
        cfg, make_rsk(p), make_rsk_contenders(cfg, OpKind::kLoad), 0,
        100'000'000);
    EXPECT_GE(m.bus_utilization, 0.97);
}

TEST(Integration, TracerTimelineShowsRotation) {
    // Figure 2-style check: under saturation the grant order must cycle
    // through the cores in strict rotation.
    Machine m(MachineConfig::textbook());
    m.tracer().enable();
    RskParams p;
    p.iterations = 20;
    for (CoreId c = 0; c < 4; ++c) {
        RskParams pc = p;
        pc.data_base = 0x0010'0000 + c * 0x0010'0000;
        pc.code_base = c * 0x0001'0000;
        m.load_program(c, make_rsk(pc));
    }
    m.run_until_core(0, 1'000'000);
    const auto grants = m.tracer().filtered([](const TraceEvent& e) {
        return e.kind == TraceKind::kBusGrant;
    });
    ASSERT_GE(grants.size(), 40u);
    // After the warm-up, consecutive grants differ by +1 (mod 4).
    for (std::size_t i = grants.size() - 20; i + 1 < grants.size(); ++i) {
        EXPECT_EQ((grants[i].core + 1) % 4, grants[i + 1].core);
    }
}

TEST(Integration, StoreSweepShowsRampThenZero) {
    // Figure 7(b) shape: slowdown ~ nr*ubd at small k, then a descending
    // ramp, then exactly zero once delta exceeds the drain slot period.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    p.access = OpKind::kStore;
    p.unroll = 8;
    p.iterations = 25;
    std::vector<double> dbus;
    for (const std::uint32_t k : {1u, 20u, 50u}) {
        const Program scua = make_rsk_nop(p, k);
        const SlowdownResult r = run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kStore));
        dbus.push_back(static_cast<double>(r.slowdown()));
    }
    EXPECT_GT(dbus[0], dbus[1]);  // ramp decreasing
    EXPECT_NEAR(dbus[2], 0.0, 64.0);  // hidden by the buffer
}

}  // namespace
}  // namespace rrb
