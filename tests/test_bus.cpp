#include "bus/bus.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace rrb {
namespace {

class BusTest : public ::testing::Test, protected BusClient {
protected:
    static constexpr CoreId kCores = 4;
    static constexpr Cycle kLbus = 2;

    BusTest() : bus_(kCores, std::make_unique<RoundRobinArbiter>(kCores)) {
        bus_.attach_client(this);
    }

    /// The one completion sink: records (core, completion) pairs.
    void bus_complete(const BusRequest& request, Cycle completion) override {
        completions_.push_back({request.core, completion});
    }

    /// Runs both phases for a window of cycles.
    void run_cycles(Cycle from, Cycle to) {
        for (Cycle now = from; now <= to; ++now) {
            bus_.complete_phase(now);
            bus_.arbitrate_phase(now);
        }
    }

    void post(CoreId core, Cycle ready, Cycle duration = kLbus) {
        bus_.post({core, BusOp::kDataLoad, 0x100u * core, ready, duration,
                   0});
    }

    Bus bus_;
    std::vector<std::pair<CoreId, Cycle>> completions_;
};

TEST_F(BusTest, SingleRequestImmediateGrant) {
    post(0, 0);
    run_cycles(0, 5);
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(completions_[0].second, kLbus);  // granted at 0, busy [0,2)
    EXPECT_EQ(bus_.counters(0).gamma.max(), 0u);
}

TEST_F(BusTest, ContentionDelayIsGrantMinusReady) {
    post(0, 0);
    post(1, 0);
    run_cycles(0, 10);
    ASSERT_EQ(completions_.size(), 2u);
    // Core 0 first (initial RR priority), core 1 waits lbus.
    EXPECT_EQ(bus_.counters(0).gamma.max(), 0u);
    EXPECT_EQ(bus_.counters(1).gamma.max(), kLbus);
}

TEST_F(BusTest, UbdScenarioLowestPriorityWaitsNcMinus1TimesLbus) {
    // All four post at cycle 0; the last in RR order waits 3*lbus = ubd.
    for (CoreId c = 0; c < kCores; ++c) post(c, 0);
    run_cycles(0, 20);
    ASSERT_EQ(completions_.size(), 4u);
    EXPECT_EQ(bus_.counters(3).gamma.max(), (kCores - 1) * kLbus);
}

TEST_F(BusTest, BackToBackGrantSameCycleAsCompletion) {
    // A request becoming ready exactly when the bus frees is granted that
    // same cycle (delta = 0 path).
    post(0, 0);
    run_cycles(0, 1);
    post(1, kLbus);  // ready exactly at completion of core 0's txn
    run_cycles(2, 6);
    ASSERT_EQ(completions_.size(), 2u);
    EXPECT_EQ(completions_[1].second, 2 * kLbus);
    EXPECT_EQ(bus_.counters(1).gamma.max(), 0u);
}

TEST_F(BusTest, FutureReadyNotGrantedEarly) {
    post(0, 5);
    run_cycles(0, 4);
    EXPECT_TRUE(completions_.empty());
    run_cycles(5, 8);
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(completions_[0].second, 5 + kLbus);
}

TEST_F(BusTest, RotationUnderSaturation) {
    // Synchrony effect substrate: keep all cores always pending; grants
    // must rotate and every request of the re-posting core waits exactly
    // (Nc-1)*lbus when re-posted with ready = completion (delta = 0).
    for (CoreId c = 0; c < kCores; ++c) post(c, 0);
    for (Cycle now = 0; now <= 100; ++now) {
        bus_.complete_phase(now);
        // Re-post completed requests immediately (delta = 0).
        while (!completions_.empty()) {
            const auto [core, done] = completions_.back();
            completions_.pop_back();
            if (done + kLbus * 8 < 100) post(core, done);
        }
        bus_.arbitrate_phase(now);
    }
    for (CoreId c = 0; c < kCores; ++c) {
        const Histogram& gamma = bus_.counters(c).gamma;
        // After the initial transient every request waits ubd.
        EXPECT_EQ(gamma.max(), (kCores - 1) * kLbus) << "core " << c;
        EXPECT_GE(gamma.count((kCores - 1) * kLbus), gamma.total() - 1);
    }
}

TEST_F(BusTest, UtilizationFullWhenSaturated) {
    for (CoreId c = 0; c < kCores; ++c) post(c, 0);
    for (Cycle now = 0; now <= 79; ++now) {
        bus_.complete_phase(now);
        while (!completions_.empty()) {
            const auto [core, done] = completions_.back();
            completions_.pop_back();
            if (done < 70) post(core, done);
        }
        bus_.arbitrate_phase(now);
    }
    EXPECT_GE(bus_.utilization(72), 0.95);
}

TEST_F(BusTest, ReadyContendersCounted) {
    post(0, 0);
    post(1, 0);
    post(2, 0);  // sees 2 others pending
    EXPECT_EQ(bus_.counters(0).ready_contenders.max(), 0u);
    EXPECT_EQ(bus_.counters(1).ready_contenders.max(), 1u);
    EXPECT_EQ(bus_.counters(2).ready_contenders.max(), 2u);
}

TEST_F(BusTest, BusyReportsPendingAndActive) {
    post(0, 0);
    EXPECT_TRUE(bus_.busy(0));
    run_cycles(0, 0);  // granted, now active
    EXPECT_TRUE(bus_.busy(0));
    run_cycles(1, kLbus);
    EXPECT_FALSE(bus_.busy(0));
}

TEST_F(BusTest, CountersAccumulate) {
    post(0, 0);
    run_cycles(0, 3);
    post(0, 4);
    run_cycles(4, 7);
    EXPECT_EQ(bus_.counters(0).requests, 2u);
    EXPECT_EQ(bus_.counters(0).busy_cycles, 2 * kLbus);
    EXPECT_EQ(bus_.total_busy_cycles(), 2 * kLbus);
}

TEST_F(BusTest, ResetCountersClears) {
    post(0, 0);
    run_cycles(0, 3);
    bus_.reset_counters();
    EXPECT_EQ(bus_.counters(0).requests, 0u);
    EXPECT_EQ(bus_.total_busy_cycles(), 0u);
}

TEST_F(BusTest, ZeroDurationRejected) {
    BusRequest req{0, BusOp::kDataLoad, 0, 0, 0, 0};
    EXPECT_THROW(bus_.post(req), std::invalid_argument);
}

/// Minimal standalone client for tests outside the fixture.
struct RecordingClient final : BusClient {
    std::vector<std::pair<CoreId, Cycle>> completions;
    void bus_complete(const BusRequest& request, Cycle c) override {
        completions.push_back({request.core, c});
    }
};

TEST(BusTdma, SlotOwnershipDelaysGrant) {
    Bus bus(2, std::make_unique<TdmaArbiter>(2, 10));
    RecordingClient client;
    bus.attach_client(&client);
    bus.post({1, BusOp::kDataLoad, 0, 0, 2, 0});
    for (Cycle now = 0; now <= 20; ++now) {
        bus.complete_phase(now);
        bus.arbitrate_phase(now);
    }
    // Core 1 owns [10,20): granted at 10, completes at 12.
    ASSERT_EQ(client.completions.size(), 1u);
    EXPECT_EQ(client.completions[0].second, 12u);
}

TEST(BusTdma, SoleContenderStillWaitsForItsSlot) {
    // The single-pending arbitration fast path must respect slot
    // ownership: core 0 owns [0,10) but its 8-cycle transaction posted
    // at cycle 5 no longer fits, so the grant slips to its next slot.
    Bus bus(2, std::make_unique<TdmaArbiter>(2, 10));
    RecordingClient client;
    bus.attach_client(&client);
    bus.post({0, BusOp::kDataLoad, 0, 5, 8, 0});
    for (Cycle now = 0; now <= 40; ++now) {
        bus.complete_phase(now);
        bus.arbitrate_phase(now);
    }
    ASSERT_EQ(client.completions.size(), 1u);
    EXPECT_EQ(client.completions[0].second, 28u);  // granted at 20
}

}  // namespace
}  // namespace rrb
