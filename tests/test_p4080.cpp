// The methodology on the paper's motivating COTS case: an aggressive
// 8-core platform in the spirit of the Freescale P4080 (whose contention
// was characterized by measurement in the avionics work the paper cites).
// Nothing in the estimator is retuned: the same recipe must recover the
// (hidden) ubd = 7 * 12 = 84.
#include <gtest/gtest.h>

#include "core/rrb.h"

namespace rrb {
namespace {

TEST(P4080Like, ConfigShape) {
    const MachineConfig cfg = MachineConfig::p4080_like();
    EXPECT_EQ(cfg.num_cores, 8u);
    EXPECT_EQ(cfg.load_hit_service(), 12u);
    EXPECT_EQ(cfg.ubd_analytic(), 84u);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.l2_geometry.size_bytes / cfg.num_cores, 256u * 1024u);
}

TEST(P4080Like, RskDefeatsTheBiggerDl1) {
    const MachineConfig cfg = MachineConfig::p4080_like();
    RskParams p;
    p.dl1_geometry = cfg.core.dl1_geometry;
    p.il1_geometry = cfg.core.il1_geometry;
    p.unroll = 4;
    p.iterations = 30;
    const Measurement m = run_isolation(cfg, make_rsk(p));
    // 8-way DL1 -> 9 loads per group; all must miss.
    EXPECT_EQ(m.bus_requests,
              static_cast<std::uint64_t>(4 * 9 * 30));
}

TEST(P4080Like, SynchronyEffectCapsNaiveMeasurement) {
    // delta_rsk = dl1_latency = 2 -> rsk-vs-rsk observes ubd - 2 = 82.
    const MachineConfig cfg = MachineConfig::p4080_like();
    const NaiveUbdm naive = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 40);
    EXPECT_EQ(naive.ubdm_max_gamma, 82u);
    EXPECT_LT(naive.ubdm_max_gamma, cfg.ubd_analytic());
}

TEST(P4080Like, MethodologyRecoversUbd84) {
    const MachineConfig cfg = MachineConfig::p4080_like();
    UbdEstimatorOptions opt;
    opt.k_max = 200;  // two periods of the (unknown) 84
    opt.unroll = 4;
    opt.rsk_iterations = 12;
    const UbdEstimate e = estimate_ubd(cfg, opt);
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 84u);
    EXPECT_TRUE(e.confidence.saturated);
}

TEST(P4080Like, StoreSpanCrossCheckAgrees) {
    const MachineConfig cfg = MachineConfig::p4080_like();
    UbdEstimatorOptions opt;
    opt.k_max = 110;  // store span needs Nc*lbus - 1 = 95
    opt.unroll = 4;
    opt.rsk_iterations = 12;
    const StoreSpanEstimate e = estimate_ubd_store_span(cfg, opt);
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 84u);
}

}  // namespace
}  // namespace rrb
