// End-to-end tests of the paper's methodology: ubd recovered from pure
// execution-time measurements, with no bus-latency knowledge.
#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/calibrate.h"
#include "core/experiment.h"
#include "kernels/rsk.h"

namespace rrb {
namespace {

UbdEstimatorOptions fast_options(std::uint32_t k_max) {
    UbdEstimatorOptions opt;
    opt.k_max = k_max;
    opt.unroll = 8;
    opt.rsk_iterations = 30;
    return opt;
}

TEST(Calibration, DeltaNopIsOneCycleOnNgmp) {
    const NopCalibration cal =
        calibrate_delta_nop(MachineConfig::ngmp_ref());
    EXPECT_EQ(cal.rounded(), 1u);
    EXPECT_LT(cal.residual(), 0.02);
    EXPECT_GT(cal.nops_executed, 10000u);
}

TEST(Calibration, SlowNopPipeMeasured) {
    // If nops took 2 cycles the calibration must say so (Section 4.2's
    // "unlikely case delta_nop > 1").
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const std::size_t body = 1024;
    const Program kernel = make_nop_kernel(body, 32, /*nop_latency=*/2);
    const Measurement m = run_isolation(cfg, kernel);
    const double per_nop = static_cast<double>(m.exec_time) /
                           static_cast<double>(body * 32);
    EXPECT_NEAR(per_nop, 2.0, 0.1);
}

TEST(Estimator, RecoversUbdOnTextbookSetup) {
    // lbus = 2, ubd = 6 (Figure 3's platform).
    const UbdEstimate e =
        estimate_ubd(MachineConfig::textbook(), fast_options(16));
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 6u);
    EXPECT_EQ(e.period_k, 6u);
}

TEST(Estimator, RecoversUbd27OnNgmpRef) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const UbdEstimate e = estimate_ubd(cfg, fast_options(60));
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, cfg.ubd_analytic());  // 27
    EXPECT_TRUE(e.confidence.saturated);
    EXPECT_GE(e.confidence.detector_votes, 2);
}

TEST(Estimator, RecoversUbd27OnNgmpVar) {
    // Robustness (Section 5.3): the var architecture shifts the sweep's
    // phase (peaks at 24/51 instead of 0/27/54) but not its period.
    const MachineConfig cfg = MachineConfig::ngmp_var();
    const UbdEstimate e = estimate_ubd(cfg, fast_options(60));
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 27u);
}

TEST(Estimator, SweepTooShortReportsNotFound) {
    // k_max = 10 < one period (27): the estimator must say so rather than
    // fabricate a bound.
    const UbdEstimate e =
        estimate_ubd(MachineConfig::ngmp_ref(), fast_options(10));
    EXPECT_FALSE(e.found);
    EXPECT_FALSE(e.confidence.warnings.empty());
}

TEST(Estimator, DbusSeriesIsPeriodicWithUbd) {
    const UbdEstimate e =
        estimate_ubd(MachineConfig::textbook(), fast_options(18));
    ASSERT_TRUE(e.found);
    ASSERT_EQ(e.dbus.size(), 19u);
    for (std::size_t k = 0; k + 6 < e.dbus.size(); ++k) {
        EXPECT_NEAR(e.dbus[k], e.dbus[k + 6], e.dbus[k] * 0.02 + 1.0)
            << "k " << k;
    }
}

TEST(Estimator, IsolationTimeGrowsWithK) {
    // More nops = longer isolated execution; sanity of the sweep data.
    const UbdEstimate e =
        estimate_ubd(MachineConfig::textbook(), fast_options(12));
    ASSERT_GE(e.et_isolation.size(), 12u);
    EXPECT_LT(e.et_isolation.front(), e.et_isolation.back());
}

TEST(Estimator, OptionValidation) {
    EXPECT_THROW(estimate_ubd(MachineConfig::textbook(), [] {
                     UbdEstimatorOptions o;
                     o.k_max = 2;
                     return o;
                 }()),
                 std::invalid_argument);
}

class SlowNopSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlowNopSweep, AliasedSweepStillRecoversUbd) {
    // Section 4.2's delta_nop > 1 case, including the aliasing trap:
    // delta_nop = 2 yields period_k = 27 (gcd(27,2) = 1), where the naive
    // period_k * delta_nop conversion would report 54. The amplitude
    // disambiguation must recover 27 for every nop latency.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    UbdEstimatorOptions opt = fast_options(70);
    opt.rsk_iterations = 20;
    opt.nop_latency = GetParam();
    const UbdEstimate e = estimate_ubd(cfg, opt);
    ASSERT_TRUE(e.found) << "nop latency " << GetParam();
    EXPECT_EQ(e.ubd, 27u) << "nop latency " << GetParam();
    EXPECT_NEAR(e.confidence.nop.delta_nop, GetParam(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(NopLatencies, SlowNopSweep,
                         ::testing::Values(1u, 2u, 3u));

class EstimatorPlatformSweep
    : public ::testing::TestWithParam<std::tuple<CoreId, Cycle>> {};

TEST_P(EstimatorPlatformSweep, UbdEqualsEquationOne) {
    // The headline property: for every platform shape, the measured ubd
    // equals (Nc - 1) * lbus with zero knowledge of lbus.
    const auto [num_cores, lbus] = GetParam();
    const MachineConfig cfg = MachineConfig::scaled(num_cores, lbus);

    const Cycle expected = cfg.ubd_analytic();
    const auto k_max = static_cast<std::uint32_t>(expected * 5 / 2 + 4);
    const UbdEstimate e = estimate_ubd(cfg, fast_options(k_max));
    ASSERT_TRUE(e.found) << "Nc=" << num_cores << " lbus=" << lbus;
    EXPECT_EQ(e.ubd, expected) << "Nc=" << num_cores << " lbus=" << lbus;
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, EstimatorPlatformSweep,
    ::testing::Values(std::make_tuple(3u, Cycle{9}),
                      std::make_tuple(4u, Cycle{2}),
                      std::make_tuple(4u, Cycle{5}),
                      std::make_tuple(4u, Cycle{13}),
                      std::make_tuple(8u, Cycle{5})));

TEST(Estimator, TwoCoreLoadContenderIsConservativeAndFlagged) {
    // With Nc = 2 a single load rsk cannot saturate the bus (its DL1
    // lookup leaves a 1-cycle hole per rotation). The measured period
    // becomes lbus + delta_rsk — a conservative over-approximation of
    // ubd = lbus — and the confidence check must flag the missing
    // saturation so the user knows the estimate is not tight.
    for (const Cycle lbus : {Cycle{5}, Cycle{9}}) {
        const MachineConfig cfg = MachineConfig::scaled(2, lbus);
        const Cycle exact = cfg.ubd_analytic();
        const UbdEstimate e = estimate_ubd(cfg, fast_options(30));
        ASSERT_TRUE(e.found) << "lbus=" << lbus;
        EXPECT_GE(e.ubd, exact);                  // never optimistic
        EXPECT_EQ(e.ubd, exact + 1);              // window + delta_rsk
        EXPECT_FALSE(e.confidence.saturated);     // and the user is told
        EXPECT_FALSE(e.confidence.warnings.empty());
    }
}

}  // namespace
}  // namespace rrb
