// Tests of the HWM measurement campaign and the L2-miss kernel.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "core/estimator.h"
#include "core/experiment.h"
#include "core/padding.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/machine.h"

namespace rrb {
namespace {

HwmCampaignOptions small_campaign() {
    HwmCampaignOptions opt;
    opt.runs = 8;
    opt.seed = 7;
    return opt;
}

TEST(HwmCampaign, BoundedByEtbWithTrueUbd) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 150, 3);
    const HwmCampaignResult hwm = run_hwm_campaign(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), small_campaign());
    const Cycle etb = hwm.et_isolation + hwm.nr * cfg.ubd_analytic();
    EXPECT_LE(hwm.high_water_mark, etb);
    EXPECT_GE(hwm.high_water_mark, hwm.et_isolation);
    EXPECT_GE(hwm.high_water_mark, hwm.low_water_mark);
}

TEST(HwmCampaign, PerRequestSlowdownNeverExceedsUbd) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    p.unroll = 8;
    p.iterations = 30;
    const Program scua = make_rsk(p);
    const HwmCampaignResult hwm = run_hwm_campaign(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), small_campaign());
    EXPECT_LE(hwm.hwm_slowdown_per_request(),
              static_cast<double>(cfg.ubd_analytic()));
    EXPECT_GT(hwm.hwm_slowdown_per_request(), 0.0);
}

TEST(HwmCampaign, RandomOffsetsProduceSpread) {
    // Different alignments should yield different execution times for a
    // bursty scua (not for a saturating rsk, whose synchrony collapses
    // the spread).
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kTblook, 0x0100'0000, 100, 5);
    HwmCampaignOptions opt = small_campaign();
    opt.runs = 10;
    const HwmCampaignResult hwm = run_hwm_campaign(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), opt);
    const std::set<Cycle> distinct(hwm.exec_times.begin(),
                                   hwm.exec_times.end());
    EXPECT_GE(distinct.size(), 2u);
}

TEST(HwmCampaign, DeterministicForSameSeed) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCanrdr, 0x0100'0000, 60, 2);
    const auto a = run_hwm_campaign(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), small_campaign());
    const auto b = run_hwm_campaign(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), small_campaign());
    EXPECT_EQ(a.exec_times, b.exec_times);
}

TEST(HwmCampaign, Validation) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    const Program scua = make_rsk(p);
    HwmCampaignOptions opt;
    opt.runs = 0;
    EXPECT_THROW(run_hwm_campaign(cfg, scua, {scua}, opt),
                 std::invalid_argument);
    EXPECT_THROW(run_hwm_campaign(cfg, scua, {}, {}), std::invalid_argument);
}

TEST(L2MissKernel, EveryLoadReachesDram) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    Machine m(cfg);
    RskParams p;
    p.unroll = 8;
    p.iterations = 10;
    const Program kernel = make_rsk_l2miss(p, 256 * 1024);
    m.load_program(0, kernel);
    const RunResult r = m.run(50'000'000);
    ASSERT_FALSE(r.deadline_reached);
    const std::uint64_t loads = m.core(0).stats().loads;
    // Every load misses DL1 and L2 (modulo a few ifetch lines).
    EXPECT_EQ(m.core(0).stats().load_miss_requests, loads);
    EXPECT_GE(m.dram().stats().reads, loads);
}

TEST(L2MissKernel, FootprintValidation) {
    RskParams p;
    EXPECT_THROW((void)make_rsk_l2miss(p, 1024), std::invalid_argument);
}

TEST(L2MissKernel, NopVariantInterleaves) {
    RskParams p;
    p.unroll = 2;
    const Program kernel = make_rsk_l2miss(p, 256 * 1024, 3);
    EXPECT_GT(kernel.count(OpKind::kNop), 0u);
    EXPECT_EQ(kernel.count(OpKind::kNop), kernel.count(OpKind::kLoad) * 3);
}

TEST(L2MissKernel, AddressesNeverRepeatWithinSweep) {
    RskParams p;
    p.unroll = 2;
    const Program kernel = make_rsk_l2miss(p, 256 * 1024);
    std::set<Addr> seen;
    const std::uint64_t passes = 256 * 1024 / (kernel.body.size() * 32);
    for (std::uint64_t it = 0; it < passes; ++it) {
        for (const Instruction& instr : kernel.body) {
            if (instr.kind != OpKind::kLoad) continue;
            const Addr line = instr.addr.address(it) / 32;
            EXPECT_TRUE(seen.insert(line).second) << "line repeated";
        }
    }
}

}  // namespace
}  // namespace rrb
