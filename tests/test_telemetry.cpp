// Telemetry layer: counter merge law, span nesting, run-report schema,
// and — the load-bearing property — bit-identical campaign output with
// telemetry on or off.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "core/session.h"
#include "engine/progress.h"
#include "kernels/autobench.h"
#include "obs/heartbeat.h"
#include "obs/report.h"
#include "stats/checkpoint.h"

namespace rrb::obs {
namespace {

/// Arms the registry from a clean slate and disarms on scope exit, so
/// every test reads only its own campaign and no state leaks into the
/// next test whatever order gtest runs them in.
struct ScopedTelemetry {
    ScopedTelemetry() {
        TelemetryRegistry::instance().reset();
        TelemetryRegistry::instance().enable();
    }
    ~ScopedTelemetry() { TelemetryRegistry::instance().disable(); }
};

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult invoke(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(args, out, err);
    return {code, out.str(), err.str()};
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/// Naive single-key JSON number lookup, enough for the flat keys the
/// run-report schema uses.
std::uint64_t json_number(const std::string& text, const std::string& key) {
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return std::uint64_t(-1);
    return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

TEST(Telemetry, DisabledCountsNothing) {
    TelemetryRegistry::instance().reset();
    TelemetryRegistry::instance().disable();
    count(kRunsCompleted, 7);
    EXPECT_EQ(TelemetryRegistry::instance().counters()[kRunsCompleted],
              0u);
}

TEST(Telemetry, CountersSumAcrossThreads) {
    const ScopedTelemetry scoped;
    count(kRunsCompleted, 5);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 100; ++i) count(kRunsCompleted);
        });
    }
    for (std::thread& t : threads) t.join();
    // Each thread bumped its own block; the read-side merge sums them.
    EXPECT_EQ(TelemetryRegistry::instance().counters()[kRunsCompleted],
              405u);
    EXPECT_GE(TelemetryRegistry::instance().worker_blocks(), 1u);
}

TEST(Telemetry, SnapshotDeltaSaturates) {
    CounterSnapshot earlier;
    earlier.values[kRunsCompleted] = 10;
    CounterSnapshot later;
    later.values[kRunsCompleted] = 4;  // reset happened in between
    later.values[kCyclesSimulated] = 9;
    const CounterSnapshot delta = later.delta_since(earlier);
    EXPECT_EQ(delta[kRunsCompleted], 0u);
    EXPECT_EQ(delta[kCyclesSimulated], 9u);
}

TEST(Telemetry, SpansNestAcrossThreads) {
    const ScopedTelemetry scoped;
    std::uint64_t child_id = 0;
    {
        const Span parent("campaign", 0, 100);
        EXPECT_EQ(current_span(), parent.id());
        // A worker parents its span on the id the submitter captured.
        const std::uint64_t captured = current_span();
        std::thread worker([&] {
            const Span child("shard", captured, 3, 25);
            child_id = child.id();
        });
        worker.join();
        EXPECT_EQ(current_span(), parent.id());
    }
    EXPECT_EQ(current_span(), 0u);
    const std::vector<SpanRecord> spans =
        TelemetryRegistry::instance().spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].id, child_id);
    EXPECT_EQ(spans[1].parent, spans[0].id);
    EXPECT_EQ(spans[1].index, 3u);
    EXPECT_EQ(spans[1].items, 25u);
    for (const SpanRecord& s : spans) {
        EXPECT_NE(s.end_ns, 0u) << s.name;
        EXPECT_GE(s.end_ns, s.begin_ns) << s.name;
    }
}

// The merge law: counters that describe *what work ran* — as opposed to
// when — are identical at every --jobs value, exactly like the campaign
// results they ride along with.
TEST(Telemetry, DeterministicCountersObeyTheMergeLaw) {
    const std::vector<Counter> deterministic = {
        kRunsCompleted, kCyclesSimulated, kEventsSkipped, kCyclesSkipped,
        kShardsCompleted};
    CounterSnapshot at_one;
    {
        const ScopedTelemetry scoped;
        const CliResult r = invoke(
            {"pwcet", "--runs", "400", "--jobs", "1", "--seed", "7"});
        ASSERT_EQ(r.code, 0) << r.err;
        at_one = TelemetryRegistry::instance().counters();
    }
    CounterSnapshot at_four;
    {
        const ScopedTelemetry scoped;
        const CliResult r = invoke(
            {"pwcet", "--runs", "400", "--jobs", "4", "--seed", "7"});
        ASSERT_EQ(r.code, 0) << r.err;
        at_four = TelemetryRegistry::instance().counters();
    }
    EXPECT_EQ(at_one[kRunsCompleted], 400u);
    for (const Counter c : deterministic) {
        EXPECT_EQ(at_one[c], at_four[c]) << counter_name(c);
    }
    EXPECT_GT(at_one[kCyclesSimulated], 0u);
}

TEST(Telemetry, CampaignSpansFormTheHierarchy) {
    const ScopedTelemetry scoped;
    const CliResult r =
        invoke({"pwcet", "--runs", "400", "--jobs", "2"});
    ASSERT_EQ(r.code, 0) << r.err;
    const std::vector<SpanRecord> spans =
        TelemetryRegistry::instance().spans();
    std::uint64_t session_id = 0;
    std::uint64_t shard_count = 0;
    std::uint64_t shard_items = 0;
    for (const SpanRecord& s : spans) {
        if (std::string(s.name) == "session.pwcet") session_id = s.id;
    }
    ASSERT_NE(session_id, 0u);
    for (const SpanRecord& s : spans) {
        if (std::string(s.name) != "shard") continue;
        ++shard_count;
        shard_items += s.items;
        EXPECT_EQ(s.parent, session_id);
        EXPECT_NE(s.end_ns, 0u);
    }
    // 400 runs fall below the 256-shard target: one run per shard.
    EXPECT_EQ(shard_count,
              TelemetryRegistry::instance().counters()[kShardsCompleted]);
    EXPECT_EQ(shard_items, 400u);
}

TEST(Telemetry, RunReportSchemaRoundTrips) {
    RunReportInfo info;
    info.command = "pwcet";
    info.campaign.scenario_fingerprint = 0xfeed;
    info.campaign.seed = 42;
    info.campaign.total_runs = 1000;
    info.campaign.block_size = 50;
    info.campaign.shard_size = 4;
    info.campaign.plan_shards = 250;
    info.campaign.first_run = 0;
    info.campaign.last_run = 1000;
    info.jobs = 4;
    info.wall_ns = 2'000'000'000;  // 2 s
    CounterSnapshot counters;
    counters.values[kRunsCompleted] = 1000;
    counters.values[kLeaseHits] = 996;
    counters.values[kLeaseMisses] = 4;
    counters.values[kEventsSkipped] = 3000;
    std::vector<SpanRecord> spans;
    spans.push_back({1, 0, "session.pwcet", 0, 1000, 10, 20});

    const std::string text = render_run_report(info, counters, spans);
    EXPECT_NE(text.find("\"schema\": \"rrb-telemetry\""),
              std::string::npos);
    EXPECT_EQ(json_number(text, "version"), kRunReportSchemaVersion);
    EXPECT_EQ(json_number(text, "scenario_fingerprint"), 0xfeedu);
    EXPECT_EQ(json_number(text, "runs_completed"), 1000u);
    EXPECT_NE(text.find("\"runs_per_sec\": 500.000000"),
              std::string::npos);
    EXPECT_NE(text.find("\"lease_hit_rate\": 0.996000"),
              std::string::npos);
    EXPECT_NE(text.find("\"name\": \"session.pwcet\""),
              std::string::npos);

    // File form round-trips byte-exactly.
    const std::string path = "telemetry_roundtrip.json";
    ASSERT_TRUE(write_run_report(path, info, counters, spans));
    EXPECT_EQ(slurp(path), text);
    std::remove(path.c_str());
}

TEST(Telemetry, CheckpointMetaConvertsToCampaignInfo) {
    CheckpointMeta meta;
    meta.scenario_fingerprint = 0xabc;
    meta.seed = 9;
    meta.total_runs = 2000;
    meta.block_size = 50;
    meta.shard_size = 8;
    meta.plan_shards = 250;
    meta.slice_index = 1;
    meta.slice_count = 4;
    meta.first_run = 500;
    meta.last_run = 1000;
    const CampaignInfo info = telemetry_info(meta);
    EXPECT_EQ(info.scenario_fingerprint, 0xabcu);
    EXPECT_EQ(info.seed, 9u);
    EXPECT_EQ(info.total_runs, 2000u);
    EXPECT_EQ(info.block_size, 50u);
    EXPECT_EQ(info.shard_size, 8u);
    EXPECT_EQ(info.plan_shards, 250u);
    EXPECT_EQ(info.slice_index, 1u);
    EXPECT_EQ(info.slice_count, 4u);
    EXPECT_EQ(info.first_run, 500u);
    EXPECT_EQ(info.last_run, 1000u);
}

// The acceptance-criteria invocation: a sharded pwcet run with
// --telemetry produces a schema-versioned report carrying the shard's
// run range, wall time and the engine counters.
TEST(Telemetry, CliWritesAShardRunReport) {
    const std::string report_path = "telemetry_shard.json";
    const std::string ckpt_path = "telemetry_shard.ckpt";
    const CliResult r = invoke({"pwcet", "--runs", "1000", "--shard",
                                "1/4", "--checkpoint-out", ckpt_path,
                                "--telemetry", report_path});
    ASSERT_EQ(r.code, 0) << r.err;
    const std::string text = slurp(report_path);
    EXPECT_NE(text.find("\"schema\": \"rrb-telemetry\""),
              std::string::npos);
    EXPECT_NE(text.find("\"command\": \"pwcet\""), std::string::npos);
    EXPECT_EQ(json_number(text, "total_runs"), 1000u);
    EXPECT_EQ(json_number(text, "slice_index"), 1u);
    EXPECT_EQ(json_number(text, "slice_count"), 4u);
    // 1000 runs shard at size 4 into 250 plan shards; slice 1/4 takes
    // shards [62, 125) — runs [248, 500).
    EXPECT_EQ(json_number(text, "first_run"), 248u);
    EXPECT_EQ(json_number(text, "last_run"), 500u);
    EXPECT_EQ(json_number(text, "runs_completed"), 252u);
    EXPECT_GT(json_number(text, "wall_ns"), 0u);
    EXPECT_GT(json_number(text, "shard_wall_ns"), 0u);
    EXPECT_NE(text.find("\"name\": \"shard\""), std::string::npos);
    // The registry is disarmed once the command finishes.
    EXPECT_FALSE(enabled());
    std::remove(report_path.c_str());
    std::remove(ckpt_path.c_str());
}

// The whole point of "out-of-band": the campaign's report on stdout is
// byte-identical whether telemetry observed it or not.
TEST(Telemetry, CampaignOutputIsBitIdenticalWithTelemetryOnOrOff) {
    const std::string report_path = "telemetry_identity.json";
    const CliResult off =
        invoke({"pwcet", "--runs", "400", "--jobs", "2", "--seed", "3"});
    const CliResult on =
        invoke({"pwcet", "--runs", "400", "--jobs", "2", "--seed", "3",
                "--telemetry", report_path});
    EXPECT_EQ(off.code, on.code);
    EXPECT_EQ(off.out, on.out);

    const CliResult wb_off = invoke({"whitebox", "--runs", "60"});
    const CliResult wb_on =
        invoke({"whitebox", "--runs", "60", "--telemetry", report_path});
    EXPECT_EQ(wb_off.code, wb_on.code);
    EXPECT_EQ(wb_off.out, wb_on.out);
    std::remove(report_path.c_str());
}

TEST(Telemetry, SpansCloseWhenACampaignThrowsMidShard) {
    const ScopedTelemetry scoped;
    // An empty-body contender passes the scenario's up-front checks
    // (emptiness of the *list* is all validate() can decide) but throws
    // std::invalid_argument when a shard worker installs it for its
    // first run — after the session and shard spans have opened.
    Program empty;
    const Scenario scenario =
        Scenario::on(MachineConfig::ngmp_ref())
            .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 8, 9))
            .contenders({empty})
            .runs(32);
    Session session;
    session.jobs(2);
    EXPECT_THROW((void)session.hwm(scenario), std::invalid_argument);
    // Stack unwinding must close every span: an open record would
    // export as a zero-length sliver in the Chrome trace, and a stale
    // thread-local parent would corrupt the next campaign's hierarchy.
    EXPECT_EQ(current_span(), 0u);
    const std::vector<SpanRecord> spans =
        TelemetryRegistry::instance().spans();
    EXPECT_FALSE(spans.empty());
    for (const SpanRecord& s : spans) {
        EXPECT_NE(s.end_ns, 0u) << s.name;
        EXPECT_GE(s.end_ns, s.begin_ns) << s.name;
    }
}

TEST(Telemetry, ProgressRenderClampsOvershoot) {
    engine::ProgressCounter progress;
    progress.begin(10);
    for (int i = 0; i < 12; ++i) progress.tick();
    // Sweep re-begins can leave stray ticks from the previous batch;
    // the rendered line never overshoots the announced total.
    EXPECT_EQ(engine::render_progress(progress), "10/10 (100%)");
}

TEST(Telemetry, HeartbeatMeterRendersRateAndEta) {
    engine::ProgressCounter progress;
    progress.begin(100);
    HeartbeatMeter meter(2);
    // The window is primed at construction; sampling immediately with
    // no ticks still reads rate 0, eta 0.
    EXPECT_NE(meter.sample(progress).find("0/100 (0%) | 0 runs/s"),
              std::string::npos);
    for (int i = 0; i < 50; ++i) progress.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::string line = meter.sample(progress);
    EXPECT_NE(line.find("50/100 (50%)"), std::string::npos);
    EXPECT_NE(line.find("runs/s"), std::string::npos);
    EXPECT_NE(line.find("eta"), std::string::npos);
    // Overshoot: remaining work clamps to zero, never negative.
    for (int i = 0; i < 60; ++i) progress.tick();
    EXPECT_NE(meter.sample(progress).find("| eta 0s"),
              std::string::npos);
}

TEST(Telemetry, HeartbeatFlagEmitsPulseLines) {
    // A 1-second pulse on a sub-second campaign may print nothing —
    // only the flag plumbing (accepted, no crash, clean exit) is
    // asserted here; the cadence itself is timing and stays untested.
    const CliResult r = invoke(
        {"campaign", "--runs", "40", "--heartbeat", "1"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace rrb::obs
