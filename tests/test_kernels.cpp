#include "kernels/autobench.h"
#include "kernels/rsk.h"

#include <gtest/gtest.h>

#include <set>

namespace rrb {
namespace {

TEST(Rsk, BodyIsWPlusOneLoadsPerGroup) {
    RskParams p;
    p.unroll = 4;
    const Program rsk = make_rsk(p);
    const std::uint32_t w = p.dl1_geometry.ways;
    EXPECT_EQ(rsk.body.size(), 4u * (w + 1));
    EXPECT_EQ(rsk.count(OpKind::kLoad), 4u * (w + 1));
    EXPECT_EQ(rsk.count(OpKind::kNop), 0u);
}

TEST(Rsk, AllLoadsMapToSameDl1Set) {
    RskParams p;
    const Program rsk = make_rsk(p);
    const std::uint64_t set0 = p.dl1_geometry.set_of(rsk.body[0].addr.base);
    for (const Instruction& instr : rsk.body) {
        EXPECT_EQ(p.dl1_geometry.set_of(instr.addr.base), set0);
    }
}

TEST(Rsk, GroupExceedsWays) {
    // W+1 distinct tags in one set: with LRU every access must miss.
    RskParams p;
    p.unroll = 1;
    const Program rsk = make_rsk(p);
    std::set<Addr> distinct;
    for (const Instruction& instr : rsk.body) distinct.insert(instr.addr.base);
    EXPECT_EQ(distinct.size(), p.dl1_geometry.ways + 1u);
}

TEST(RskNop, InsertsKNopsPerAccess) {
    RskParams p;
    p.unroll = 2;
    const Program rsk = make_rsk_nop(p, 5);
    const std::uint32_t w = p.dl1_geometry.ways;
    EXPECT_EQ(rsk.count(OpKind::kLoad), 2u * (w + 1));
    EXPECT_EQ(rsk.count(OpKind::kNop), 2u * (w + 1) * 5u);
    // Pattern: load, nop x5, load, nop x5, ...
    EXPECT_EQ(rsk.body[0].kind, OpKind::kLoad);
    for (std::size_t i = 1; i <= 5; ++i) {
        EXPECT_EQ(rsk.body[i].kind, OpKind::kNop);
    }
    EXPECT_EQ(rsk.body[6].kind, OpKind::kLoad);
}

TEST(RskNop, KZeroEqualsPlainRsk) {
    RskParams p;
    const Program a = make_rsk(p);
    const Program b = make_rsk_nop(p, 0);
    EXPECT_EQ(a.body.size(), b.body.size());
}

TEST(Rsk, StoreVariant) {
    RskParams p;
    p.access = OpKind::kStore;
    p.unroll = 1;
    const Program rsk = make_rsk(p);
    EXPECT_EQ(rsk.count(OpKind::kStore), p.dl1_geometry.ways + 1u);
    EXPECT_EQ(rsk.count(OpKind::kLoad), 0u);
}

TEST(Rsk, RejectsNonMemoryAccessKind) {
    RskParams p;
    p.access = OpKind::kNop;
    EXPECT_THROW(make_rsk(p), std::invalid_argument);
}

TEST(NopKernel, AllNops) {
    const Program k = make_nop_kernel(128, 10);
    EXPECT_EQ(k.body.size(), 128u);
    EXPECT_EQ(k.count(OpKind::kNop), 128u);
    EXPECT_EQ(k.iterations, 10u);
}

TEST(NopKernel, CustomLatency) {
    const Program k = make_nop_kernel(4, 1, 3);
    for (const Instruction& instr : k.body) EXPECT_EQ(instr.latency, 3u);
}

TEST(Autobench, AllSixteenKernelsBuild) {
    EXPECT_EQ(all_autobench().size(), 16u);
    for (const Autobench kernel : all_autobench()) {
        const Program p = make_autobench(kernel, 0x100000, 10, 1);
        EXPECT_FALSE(p.body.empty()) << to_string(kernel);
        EXPECT_EQ(p.iterations, 10u);
        EXPECT_STREQ(p.name.c_str(), to_string(kernel));
    }
}

TEST(Autobench, NamesAreDistinct) {
    std::set<std::string> names;
    for (const Autobench kernel : all_autobench()) {
        names.insert(to_string(kernel));
    }
    EXPECT_EQ(names.size(), 16u);
}

TEST(Autobench, KernelsHaveDistinctOpMixes) {
    // The suite must be heterogeneous: not all kernels share one load
    // count.
    std::set<std::uint64_t> load_counts;
    for (const Autobench kernel : all_autobench()) {
        const Program p = make_autobench(kernel, 0, 1, 1);
        load_counts.insert(p.count(OpKind::kLoad));
    }
    EXPECT_GE(load_counts.size(), 5u);
}

TEST(Autobench, DeterministicForSameSeed) {
    const Program a = make_autobench(Autobench::kTblook, 0x1000, 5, 42);
    const Program b = make_autobench(Autobench::kTblook, 0x1000, 5, 42);
    ASSERT_EQ(a.body.size(), b.body.size());
    for (std::size_t i = 0; i < a.body.size(); ++i) {
        EXPECT_EQ(a.body[i].kind, b.body[i].kind);
        EXPECT_EQ(a.body[i].addr.address(7), b.body[i].addr.address(7));
    }
}

TEST(RandomWorkload, DrawsDistinctKernels) {
    const std::vector<Program> wl = random_autobench_workload(4, 99, 100);
    ASSERT_EQ(wl.size(), 4u);
    std::set<std::string> names;
    for (const Program& p : wl) names.insert(p.name);
    EXPECT_EQ(names.size(), 4u);
}

TEST(RandomWorkload, DisjointDataRegions) {
    const std::vector<Program> wl = random_autobench_workload(4, 7, 100);
    std::set<Addr> bases;
    for (const Program& p : wl) {
        for (const Instruction& instr : p.body) {
            if (instr.kind == OpKind::kLoad || instr.kind == OpKind::kStore) {
                bases.insert(instr.addr.base & ~Addr{0x000F'FFFF});
            }
        }
    }
    EXPECT_GE(bases.size(), 4u);
}

TEST(RandomWorkload, ReproducibleAndSeedSensitive) {
    const auto a = random_autobench_workload(4, 1, 10);
    const auto b = random_autobench_workload(4, 1, 10);
    const auto c = random_autobench_workload(4, 2, 10);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a[i].name, b[i].name);
    bool any_diff = false;
    for (std::size_t i = 0; i < 4; ++i) {
        if (a[i].name != c[i].name) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(RandomWorkload, RejectsTooManyTasks) {
    EXPECT_THROW(random_autobench_workload(17, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rrb
