#include "stats/ascii_chart.h"
#include "stats/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace rrb {
namespace {

TEST(RenderSeries, EmptySeries) {
    EXPECT_EQ(render_series({}), "(empty series)\n");
}

TEST(RenderSeries, PeaksTallerThanTroughs) {
    const std::vector<double> ys = {1, 5, 1, 5, 1};
    ChartOptions opts;
    opts.height = 4;
    const std::string chart = render_series(ys, opts);
    // Top row has exactly the two peak columns filled.
    const auto first_line = chart.substr(chart.find('|') + 1, 5);
    EXPECT_EQ(first_line, " # # ");
}

TEST(RenderSeries, ConstantSeriesBottomRow) {
    const std::vector<double> ys(5, 3.0);
    const std::string chart = render_series(ys);
    EXPECT_NE(chart.find("#####"), std::string::npos);
}

TEST(RenderSeries, DecimatesWideSeries) {
    std::vector<double> ys(1000, 1.0);
    ChartOptions opts;
    opts.max_width = 50;
    const std::string chart = render_series(ys, opts);
    EXPECT_NE(chart.find("every 20th sample"), std::string::npos);
}

TEST(RenderSeries, TitleAndLabels) {
    ChartOptions opts;
    opts.title = "My Title";
    opts.x_label = "k";
    const std::string chart = render_series(std::vector<double>{1, 2}, opts);
    EXPECT_EQ(chart.find("My Title"), 0u);
    EXPECT_NE(chart.find("k\n"), std::string::npos);
}

TEST(RenderSeries, HeightValidation) {
    ChartOptions opts;
    opts.height = 1;
    EXPECT_THROW(render_series(std::vector<double>{1.0}, opts),
                 std::invalid_argument);
}

TEST(RenderHistogram, EmptyHistogram) {
    EXPECT_EQ(render_histogram(Histogram{}), "(empty histogram)\n");
}

TEST(RenderHistogram, RowsSortedWithPercentages) {
    Histogram h;
    h.add(26, 98);
    h.add(24, 2);
    const std::string chart = render_histogram(h);
    const auto pos24 = chart.find("24 |");
    const auto pos26 = chart.find("26 |");
    ASSERT_NE(pos24, std::string::npos);
    ASSERT_NE(pos26, std::string::npos);
    EXPECT_LT(pos24, pos26);
    EXPECT_NE(chart.find("(98.00%)"), std::string::npos);
}

TEST(RenderTable, AlignsColumns) {
    const std::vector<std::string> names = {"a", "b"};
    const std::vector<std::vector<double>> cols = {{1.0, 2.0}, {3.5}};
    const std::string table = render_table(names, cols, "k");
    EXPECT_EQ(table.find("k\ta\tb"), 0u);
    EXPECT_NE(table.find("0\t1\t3.500"), std::string::npos);
    EXPECT_NE(table.find("1\t2\t-"), std::string::npos);
}

TEST(RenderTable, ValidatesShape) {
    const std::vector<std::string> names = {"a"};
    const std::vector<std::vector<double>> cols = {{1.0}, {2.0}};
    EXPECT_THROW(render_table(names, cols), std::invalid_argument);
}

TEST(Csv, HeaderAndRows) {
    const std::vector<std::string> names = {"x", "y"};
    const std::vector<std::vector<double>> cols = {{1.0, 2.0}, {0.5, 0.25}};
    const std::string csv = to_csv(names, cols);
    EXPECT_EQ(csv.find("index,x,y\n"), 0u);
    EXPECT_NE(csv.find("0,1,0.5\n"), std::string::npos);
    EXPECT_NE(csv.find("1,2,0.25\n"), std::string::npos);
}

TEST(Csv, MissingTrailingValuesEmpty) {
    const std::vector<std::string> names = {"x", "y"};
    const std::vector<std::vector<double>> cols = {{1.0, 2.0}, {9.0}};
    const std::string csv = to_csv(names, cols);
    EXPECT_NE(csv.find("1,2,\n"), std::string::npos);
}

TEST(Csv, ShapeValidation) {
    const std::vector<std::string> names = {"x"};
    const std::vector<std::vector<double>> cols = {{1.0}, {2.0}};
    EXPECT_THROW(to_csv(names, cols), std::invalid_argument);
}

TEST(Csv, WriteTextFileRoundTrip) {
    const std::string path = "/tmp/rrb_csv_test.csv";
    ASSERT_TRUE(write_text_file(path, "index,x\n0,1\n"));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "index,x");
    std::remove(path.c_str());
}

TEST(Csv, WriteTextFileFailsOnBadPath) {
    EXPECT_FALSE(write_text_file("/nonexistent-dir/file.csv", "x"));
}

}  // namespace
}  // namespace rrb
