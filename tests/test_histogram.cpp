#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rrb {
namespace {

TEST(Histogram, EmptyBasics) {
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(3), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_THROW((void)h.min(), std::invalid_argument);
    EXPECT_THROW((void)h.max(), std::invalid_argument);
    EXPECT_THROW((void)h.mode(), std::invalid_argument);
}

TEST(Histogram, AddAndCount) {
    Histogram h;
    h.add(5);
    h.add(5);
    h.add(7, 3);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(5), 2u);
    EXPECT_EQ(h.count(7), 3u);
    EXPECT_EQ(h.count(6), 0u);
}

TEST(Histogram, AddZeroCountIsNoop) {
    Histogram h;
    h.add(5, 0);
    EXPECT_TRUE(h.empty());
}

TEST(Histogram, MinMaxMeanMode) {
    Histogram h;
    h.add(1, 1);
    h.add(2, 5);
    h.add(10, 2);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 10u);
    EXPECT_EQ(h.mode(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 10.0 + 20.0) / 8.0);
    EXPECT_DOUBLE_EQ(h.mode_fraction(), 5.0 / 8.0);
}

TEST(Histogram, ModeTieBreaksToSmallestValue) {
    Histogram h;
    h.add(4, 3);
    h.add(9, 3);
    EXPECT_EQ(h.mode(), 4u);
}

TEST(Histogram, Fraction) {
    Histogram h;
    h.add(0, 98);
    h.add(1, 2);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.98);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.02);
}

TEST(Histogram, QuantileNearestRank) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 10; ++v) h.add(v);
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.1), 1u);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(1.0), 10u);
}

TEST(Histogram, QuantileRejectsOutOfRange) {
    Histogram h;
    h.add(1);
    EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, BucketsSortedByValue) {
    Histogram h;
    h.add(9);
    h.add(2);
    h.add(5);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].first, 2u);
    EXPECT_EQ(buckets[1].first, 5u);
    EXPECT_EQ(buckets[2].first, 9u);
}

TEST(Histogram, Merge) {
    Histogram a;
    a.add(1, 2);
    a.add(3, 1);
    Histogram b;
    b.add(3, 4);
    b.add(7, 1);
    a.merge(b);
    EXPECT_EQ(a.total(), 8u);
    EXPECT_EQ(a.count(3), 5u);
    EXPECT_EQ(a.count(7), 1u);
}

/// Random histogram over a small value domain so merges collide often.
Histogram random_histogram(std::uint64_t seed, std::size_t entries) {
    Pcg32 rng(seed);
    Histogram h;
    for (std::size_t i = 0; i < entries; ++i) {
        h.add(rng.next_below(16), 1 + rng.next_below(5));
    }
    return h;
}

TEST(HistogramMergeProperties, Associativity) {
    // Counts are exact integers, so the shard-merge law holds bitwise:
    // (a + b) + c == a + (b + c) for any shard split.
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Histogram a = random_histogram(3 * seed + 0, 20);
        const Histogram b = random_histogram(3 * seed + 1, 15);
        const Histogram c = random_histogram(3 * seed + 2, 25);
        Histogram left = a;
        left.merge(b);
        left.merge(c);
        Histogram bc = b;
        bc.merge(c);
        Histogram right = a;
        right.merge(bc);
        EXPECT_EQ(left.buckets(), right.buckets()) << "seed " << seed;
        EXPECT_EQ(left.total(), right.total());
    }
}

TEST(HistogramMergeProperties, CommutativityAndIdentity) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Histogram a = random_histogram(2 * seed + 100, 30);
        const Histogram b = random_histogram(2 * seed + 101, 30);
        Histogram ab = a;
        ab.merge(b);
        Histogram ba = b;
        ba.merge(a);
        EXPECT_EQ(ab.buckets(), ba.buckets()) << "seed " << seed;

        Histogram with_empty = a;
        with_empty.merge(Histogram{});
        EXPECT_EQ(with_empty.buckets(), a.buckets());
        Histogram onto_empty;
        onto_empty.merge(a);
        EXPECT_EQ(onto_empty.buckets(), a.buckets());
    }
}

}  // namespace
}  // namespace rrb
