// The paper's negative results (Sections 1 and 3): the state-of-practice
// measurement recipes under-estimate ubd.
#include "core/baseline.h"

#include <gtest/gtest.h>

#include "kernels/autobench.h"

namespace rrb {
namespace {

TEST(Baseline, RskVsRskUnderestimatesOnRef) {
    // Figure 6(b), ref bars: the largest observed per-request delay is 26,
    // one cycle short of the true ubd = 27.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const NaiveUbdm n = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 80);
    EXPECT_EQ(n.ubdm_max_gamma, 26u);
    EXPECT_LT(n.ubdm_max_gamma, cfg.ubd_analytic());
}

TEST(Baseline, RskVsRskUnderestimatesMoreOnVar) {
    // Figure 6(b), var bars: ubdm = 23 — "the accuracy of ubdm varies
    // with the injection time of the underlying architecture".
    const MachineConfig cfg = MachineConfig::ngmp_var();
    const NaiveUbdm n = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 80);
    EXPECT_EQ(n.ubdm_max_gamma, 23u);
}

TEST(Baseline, MeanUbdmAlsoUnderestimates) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const NaiveUbdm n = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 80);
    EXPECT_GT(n.ubdm_mean, 0.0);
    EXPECT_LT(n.ubdm_mean, static_cast<double>(cfg.ubd_analytic()));
}

TEST(Baseline, ScuaVsRskNeverReachesUbdPerRequest) {
    // Contribution 1: running an arbitrary scua against bus-stressing rsk
    // does not make every scua request suffer ubd.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 800, 3);
    const NaiveUbdm n = naive_ubdm_scua_vs_rsk(cfg, scua);
    EXPECT_GT(n.nr, 0u);
    EXPECT_LT(n.ubdm_max_gamma, cfg.ubd_analytic());
    EXPECT_LT(n.ubdm_mean, static_cast<double>(cfg.ubd_analytic()));
}

TEST(Baseline, DetAndNrAreConsistent) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const NaiveUbdm n = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kLoad, 40);
    EXPECT_EQ(n.det,
              n.runs.contention.exec_time - n.runs.isolation.exec_time);
    EXPECT_EQ(n.nr, n.runs.contention.bus_requests);
    EXPECT_NEAR(n.ubdm_mean,
                static_cast<double>(n.det) / static_cast<double>(n.nr),
                1e-12);
}

TEST(Baseline, StoreRskDrainsCanReachUbd) {
    // Store-buffer drains inject with delta = 0, the one case where
    // requests suffer the full ubd (Section 5.3).
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const NaiveUbdm n = naive_ubdm_rsk_vs_rsk(cfg, OpKind::kStore, 40);
    EXPECT_EQ(n.ubdm_max_gamma, cfg.ubd_analytic());
}

}  // namespace
}  // namespace rrb
