#include "stats/evt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/rng.h"

namespace rrb {
namespace {

/// Draws a Gumbel(mu, beta) sample via inverse-CDF sampling.
std::vector<double> gumbel_sample(double mu, double beta, std::size_t n,
                                  std::uint64_t seed) {
    Pcg32 rng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double u = rng.next_double();
        if (u <= 0.0) u = 1e-12;
        xs.push_back(mu - beta * std::log(-std::log(u)));
    }
    return xs;
}

TEST(GumbelFit, RecoversKnownParameters) {
    const auto xs = gumbel_sample(1000.0, 50.0, 20000, 42);
    const GumbelFit fit = fit_gumbel(xs);
    ASSERT_TRUE(fit.valid());
    EXPECT_NEAR(fit.mu, 1000.0, 5.0);
    EXPECT_NEAR(fit.beta, 50.0, 3.0);
}

TEST(GumbelFit, DegenerateSamples) {
    EXPECT_FALSE(fit_gumbel({}).valid());
    const std::vector<double> one = {3.0};
    EXPECT_FALSE(fit_gumbel(one).valid());
    const std::vector<double> constant(10, 5.0);
    EXPECT_FALSE(fit_gumbel(constant).valid());  // beta = 0
}

TEST(GumbelFit, QuantileInvertsCdf) {
    GumbelFit fit;
    fit.mu = 100.0;
    fit.beta = 10.0;
    fit.sample_size = 100;
    for (const double p : {0.01, 0.5, 0.9, 0.999}) {
        EXPECT_NEAR(fit.cdf(fit.quantile(p)), p, 1e-12);
    }
}

TEST(GumbelFit, QuantileMonotone) {
    GumbelFit fit;
    fit.mu = 0.0;
    fit.beta = 1.0;
    fit.sample_size = 10;
    EXPECT_LT(fit.quantile(0.1), fit.quantile(0.5));
    EXPECT_LT(fit.quantile(0.5), fit.quantile(0.99));
}

TEST(GumbelFit, PwcetGrowsAsExceedanceShrinks) {
    const auto xs = gumbel_sample(1000.0, 50.0, 5000, 7);
    const GumbelFit fit = fit_gumbel(xs);
    EXPECT_LT(fit.pwcet(1e-3), fit.pwcet(1e-6));
    EXPECT_LT(fit.pwcet(1e-6), fit.pwcet(1e-9));
}

TEST(GumbelFit, PwcetDominatesSampleMax) {
    // At an exceedance far below 1/n, the pWCET must exceed the largest
    // observation.
    const auto xs = gumbel_sample(500.0, 20.0, 1000, 99);
    const GumbelFit fit = fit_gumbel(xs);
    double max_seen = xs[0];
    for (const double x : xs) max_seen = std::max(max_seen, x);
    EXPECT_GT(fit.pwcet(1e-9), max_seen);
}

TEST(GumbelFit, OutOfRangeProbabilityYieldsNaN) {
    GumbelFit fit;
    fit.mu = 0.0;
    fit.beta = 1.0;
    fit.sample_size = 10;
    // The domain is 0 < p < 1; anything else — including NaN, which
    // compares false against everything — must come back NaN, never a
    // garbage extrapolation.
    for (const double p : {0.0, 1.0, -0.5, 2.0,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
        EXPECT_TRUE(std::isnan(fit.quantile(p))) << "p = " << p;
        EXPECT_TRUE(std::isnan(fit.pwcet(p))) << "p = " << p;
    }
    // In-range values stay finite.
    EXPECT_TRUE(std::isfinite(fit.quantile(0.5)));
    EXPECT_TRUE(std::isfinite(fit.pwcet(1e-9)));
}

TEST(BlockMaxima, ReducesBlocks) {
    const std::vector<double> xs = {1, 5, 2, 7, 3, 4, 9, 0};
    const auto maxima = block_maxima(xs, 2);
    EXPECT_EQ(maxima, (std::vector<double>{5, 7, 4, 9}));
}

TEST(BlockMaxima, DropsPartialTail) {
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const auto maxima = block_maxima(xs, 2);
    EXPECT_EQ(maxima.size(), 2u);
}

TEST(BlockMaxima, ValidatesBlockSize) {
    const std::vector<double> xs = {1.0};
    EXPECT_THROW(block_maxima(xs, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rrb
