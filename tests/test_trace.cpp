#include "sim/trace.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
    Tracer t;
    t.record(1, TraceKind::kBusGrant, 0);
    EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, EnabledRecordsInOrder) {
    Tracer t;
    t.enable();
    t.record(5, TraceKind::kRequestReady, 2, 0xabc);
    t.record(7, TraceKind::kBusGrant, 2, 3);
    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_EQ(t.events()[0].cycle, 5u);
    EXPECT_EQ(t.events()[0].kind, TraceKind::kRequestReady);
    EXPECT_EQ(t.events()[0].core, 2u);
    EXPECT_EQ(t.events()[0].arg, 0xabcu);
    EXPECT_EQ(t.events()[1].kind, TraceKind::kBusGrant);
}

TEST(Tracer, DisableStopsRecording) {
    Tracer t;
    t.enable();
    t.record(1, TraceKind::kBusGrant, 0);
    t.disable();
    t.record(2, TraceKind::kBusGrant, 0);
    EXPECT_EQ(t.events().size(), 1u);
}

TEST(Tracer, ClearEmpties) {
    Tracer t;
    t.enable();
    t.record(1, TraceKind::kBusGrant, 0);
    t.clear();
    EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, FilteredSelectsMatching) {
    Tracer t;
    t.enable();
    t.record(1, TraceKind::kBusGrant, 0);
    t.record(2, TraceKind::kBusRelease, 0);
    t.record(3, TraceKind::kBusGrant, 1);
    const auto grants = t.filtered([](const TraceEvent& e) {
        return e.kind == TraceKind::kBusGrant;
    });
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[1].core, 1u);
}

TEST(Tracer, TimelineShowsHoldAndWait) {
    Tracer t;
    t.enable();
    // Core 0: ready at 0, granted at 2, released at 5.
    t.record(0, TraceKind::kRequestReady, 0);
    t.record(2, TraceKind::kBusGrant, 0);
    t.record(5, TraceKind::kBusRelease, 0);
    const std::string timeline = t.render_bus_timeline(0, 7, 1);
    // "c0 |..####  |"
    EXPECT_NE(timeline.find("c0 |"), std::string::npos);
    EXPECT_NE(timeline.find(".."), std::string::npos);
    EXPECT_NE(timeline.find("####"), std::string::npos);
}

TEST(Tracer, TimelineValidation) {
    Tracer t;
    EXPECT_THROW(t.render_bus_timeline(5, 4, 1), std::invalid_argument);
    EXPECT_THROW(t.render_bus_timeline(0, 4, 0), std::invalid_argument);
}

TEST(Tracer, TimelineIgnoresOutOfRangeCores) {
    Tracer t;
    t.enable();
    t.record(0, TraceKind::kBusGrant, 9);
    EXPECT_NO_THROW(t.render_bus_timeline(0, 3, 2));
}

TEST(TraceKindNames, StableStrings) {
    EXPECT_STREQ(to_string(TraceKind::kBusGrant), "grant");
    EXPECT_STREQ(to_string(TraceKind::kBusRelease), "release");
    EXPECT_STREQ(to_string(TraceKind::kRequestReady), "ready");
    EXPECT_STREQ(to_string(TraceKind::kDramActivate), "dram-act");
}

}  // namespace
}  // namespace rrb
