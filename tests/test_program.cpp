#include "isa/program.h"

#include <gtest/gtest.h>

#include <set>

namespace rrb {
namespace {

TEST(AddrPattern, FixedAlwaysBase) {
    const AddrPattern p = AddrPattern::fixed(0x1000);
    EXPECT_EQ(p.address(0), 0x1000u);
    EXPECT_EQ(p.address(99), 0x1000u);
}

TEST(AddrPattern, StrideWrapsAtRange) {
    const AddrPattern p = AddrPattern::stride(0x2000, 32, 128);
    EXPECT_EQ(p.address(0), 0x2000u);
    EXPECT_EQ(p.address(1), 0x2020u);
    EXPECT_EQ(p.address(3), 0x2060u);
    EXPECT_EQ(p.address(4), 0x2000u);  // wrapped
}

TEST(AddrPattern, StrideRejectsEmptyRange) {
    EXPECT_THROW((void)AddrPattern::stride(0, 4, 0), std::invalid_argument);
}

TEST(AddrPattern, RandomStaysInRangeAligned) {
    const AddrPattern p = AddrPattern::random(0x4000, 1024, 32, 7);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const Addr a = p.address(i);
        EXPECT_GE(a, 0x4000u);
        EXPECT_LT(a, 0x4000u + 1024u);
        EXPECT_EQ((a - 0x4000u) % 32, 0u);
    }
}

TEST(AddrPattern, RandomIsDeterministic) {
    const AddrPattern p = AddrPattern::random(0, 4096, 4, 11);
    const AddrPattern q = AddrPattern::random(0, 4096, 4, 11);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(p.address(i), q.address(i));
    }
}

TEST(AddrPattern, RandomSaltDecorrelates) {
    const AddrPattern p = AddrPattern::random(0, 1 << 20, 4, 1);
    const AddrPattern q = AddrPattern::random(0, 1 << 20, 4, 2);
    int equal = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        if (p.address(i) == q.address(i)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(AddrPattern, RandomCoversRange) {
    const AddrPattern p = AddrPattern::random(0, 64, 4, 3);
    std::set<Addr> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(p.address(i));
    EXPECT_EQ(seen.size(), 16u);  // 64/4 slots all reached
}

TEST(AddrPattern, RandomValidation) {
    EXPECT_THROW((void)AddrPattern::random(0, 0, 4), std::invalid_argument);
    EXPECT_THROW((void)AddrPattern::random(0, 16, 0), std::invalid_argument);
    EXPECT_THROW((void)AddrPattern::random(0, 2, 4), std::invalid_argument);
}

TEST(ProgramBuilder, BuildsBodyInOrder) {
    const Program p = ProgramBuilder("t")
                          .load(AddrPattern::fixed(0))
                          .nop(2)
                          .store(AddrPattern::fixed(64))
                          .alu(1, 3)
                          .iterations(5)
                          .build();
    ASSERT_EQ(p.body.size(), 5u);
    EXPECT_EQ(p.body[0].kind, OpKind::kLoad);
    EXPECT_EQ(p.body[1].kind, OpKind::kNop);
    EXPECT_EQ(p.body[2].kind, OpKind::kNop);
    EXPECT_EQ(p.body[3].kind, OpKind::kStore);
    EXPECT_EQ(p.body[4].kind, OpKind::kAlu);
    EXPECT_EQ(p.body[4].latency, 3u);
    EXPECT_EQ(p.iterations, 5u);
    EXPECT_EQ(p.total_instructions(), 25u);
}

TEST(ProgramBuilder, UnrollReplicates) {
    const Program p = ProgramBuilder("t")
                          .load(AddrPattern::fixed(0))
                          .nop(1)
                          .unroll(3)
                          .build();
    ASSERT_EQ(p.body.size(), 6u);
    EXPECT_EQ(p.body[2].kind, OpKind::kLoad);
    EXPECT_EQ(p.body[4].kind, OpKind::kLoad);
}

TEST(ProgramBuilder, EmptyBodyRejected) {
    EXPECT_THROW(ProgramBuilder("t").build(), std::invalid_argument);
}

TEST(ProgramBuilder, ZeroIterationsRejected) {
    ProgramBuilder b("t");
    EXPECT_THROW(b.iterations(0), std::invalid_argument);
}

TEST(Program, CountByKind) {
    const Program p = ProgramBuilder("t")
                          .load(AddrPattern::fixed(0))
                          .load(AddrPattern::fixed(32))
                          .nop(3)
                          .store(AddrPattern::fixed(0))
                          .build();
    EXPECT_EQ(p.count(OpKind::kLoad), 2u);
    EXPECT_EQ(p.count(OpKind::kNop), 3u);
    EXPECT_EQ(p.count(OpKind::kStore), 1u);
    EXPECT_EQ(p.count(OpKind::kAlu), 0u);
}

TEST(Program, CodeBytes) {
    const Program p =
        ProgramBuilder("t").nop(10).code_base(0x100).build();
    EXPECT_EQ(p.code_bytes(), 40u);
    EXPECT_EQ(p.code_base, 0x100u);
}

}  // namespace
}  // namespace rrb
