#include "cache/cache.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

CacheGeometry small_geo() { return {1024, 2, 32}; }  // 16 sets, 2 ways

Cache make_lru(WritePolicy wp = WritePolicy::kWriteBack,
               AllocPolicy ap = AllocPolicy::kWriteAllocate) {
    return Cache(small_geo(), ReplacementPolicy::kLru, wp, ap);
}

TEST(CacheGeometry, DerivedQuantities) {
    const CacheGeometry g{16 * 1024, 4, 32};
    EXPECT_EQ(g.num_sets(), 128u);
    EXPECT_EQ(g.set_stride(), 4096u);
    EXPECT_EQ(g.set_of(0), g.set_of(4096));
    EXPECT_NE(g.tag_of(0), g.tag_of(4096));
    EXPECT_EQ(g.set_of(32), 1u);
}

TEST(CacheGeometry, ValidationRejectsBadShapes) {
    EXPECT_THROW((CacheGeometry{100, 4, 32}.validate()),
                 std::invalid_argument);
    EXPECT_THROW((CacheGeometry{1024, 0, 32}.validate()),
                 std::invalid_argument);
    EXPECT_THROW((CacheGeometry{1024, 2, 24}.validate()),
                 std::invalid_argument);
    EXPECT_NO_THROW((CacheGeometry{1024, 2, 32}.validate()));
}

TEST(Cache, ColdMissThenHit) {
    Cache c = make_lru();
    EXPECT_FALSE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x110).hit);  // same line
    EXPECT_EQ(c.stats().read_misses, 1u);
    EXPECT_EQ(c.stats().read_hits, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
    Cache c = make_lru();
    const Addr a = 0x0;
    const Addr b = a + small_geo().set_stride();
    const Addr d = a + 2 * small_geo().set_stride();  // same set, 3rd line
    c.read(a);
    c.read(b);
    c.read(a);   // a is now MRU
    c.read(d);   // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, FifoEvictsFirstInserted) {
    Cache c(small_geo(), ReplacementPolicy::kFifo, WritePolicy::kWriteBack,
            AllocPolicy::kWriteAllocate);
    const Addr a = 0x0;
    const Addr b = a + small_geo().set_stride();
    const Addr d = a + 2 * small_geo().set_stride();
    c.read(a);
    c.read(b);
    c.read(a);   // touching a does NOT refresh FIFO order
    c.read(d);   // evicts a (first inserted)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, WPlusOneSameSetAlwaysMissesUnderLru) {
    // The rsk construction (Figure 1): W+1 lines in one W-way set with LRU
    // miss on every access once warm.
    const CacheGeometry g{16 * 1024, 4, 32};
    Cache c(g, ReplacementPolicy::kLru, WritePolicy::kWriteThrough,
            AllocPolicy::kNoWriteAllocate);
    const std::uint32_t w = g.ways;
    for (int round = 0; round < 10; ++round) {
        for (std::uint32_t i = 0; i <= w; ++i) {
            c.read(i * g.set_stride());
        }
    }
    EXPECT_EQ(c.stats().read_hits, 0u);
    EXPECT_EQ(c.stats().read_misses, 10u * (w + 1));
}

TEST(Cache, WSameSetLinesAllHitAfterWarmup) {
    const CacheGeometry g{16 * 1024, 4, 32};
    Cache c(g, ReplacementPolicy::kLru, WritePolicy::kWriteThrough,
            AllocPolicy::kNoWriteAllocate);
    const std::uint32_t w = g.ways;
    for (std::uint32_t i = 0; i < w; ++i) c.read(i * g.set_stride());
    c.reset_stats();
    for (int round = 0; round < 5; ++round) {
        for (std::uint32_t i = 0; i < w; ++i) c.read(i * g.set_stride());
    }
    EXPECT_EQ(c.stats().read_misses, 0u);
}

TEST(Cache, WriteThroughNoAllocateMissDoesNotFill) {
    Cache c = make_lru(WritePolicy::kWriteThrough,
                       AllocPolicy::kNoWriteAllocate);
    EXPECT_FALSE(c.write(0x200).hit);
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_EQ(c.stats().write_misses, 1u);
}

TEST(Cache, WriteThroughHitUpdatesWithoutDirty) {
    Cache c = make_lru(WritePolicy::kWriteThrough,
                       AllocPolicy::kNoWriteAllocate);
    c.read(0x200);
    EXPECT_TRUE(c.write(0x200).hit);
    // Evicting the line must not produce a writeback under write-through.
    const Addr b = 0x200 + small_geo().set_stride();
    const Addr d = 0x200 + 2 * small_geo().set_stride();
    c.read(b);
    c.read(d);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteBackAllocatesAndWritesBackDirty) {
    Cache c = make_lru(WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate);
    c.write(0x0);  // miss, allocate dirty
    EXPECT_TRUE(c.probe(0x0));
    const Addr b = small_geo().set_stride();
    const Addr d = 2 * small_geo().set_stride();
    c.read(b);
    const CacheAccess third = c.read(d);  // evicts dirty 0x0
    EXPECT_TRUE(third.dirty_eviction);
    EXPECT_EQ(c.stats().writebacks, 1u);
    ASSERT_TRUE(third.victim_line.has_value());
    EXPECT_EQ(*third.victim_line * small_geo().line_bytes, 0x0u);
}

TEST(Cache, ProbeDoesNotTouchLruState) {
    Cache c = make_lru();
    const Addr a = 0x0;
    const Addr b = small_geo().set_stride();
    const Addr d = 2 * small_geo().set_stride();
    c.read(a);
    c.read(b);
    (void)c.probe(a);  // must NOT make a MRU
    c.read(d);   // evicts a (still LRU)
    EXPECT_FALSE(c.probe(a));
}

TEST(Cache, FlushEmptiesEverything) {
    Cache c = make_lru();
    c.read(0x0);
    c.read(0x40);
    c.flush();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, WarmInstallsWithoutStats) {
    Cache c = make_lru();
    c.warm(0x80);
    EXPECT_TRUE(c.probe(0x80));
    EXPECT_EQ(c.stats().accesses(), 0u);
    EXPECT_TRUE(c.read(0x80).hit);
}

TEST(Cache, RandomReplacementStaysWithinSet) {
    const CacheGeometry g{1024, 2, 32};
    Cache c(g, ReplacementPolicy::kRandom, WritePolicy::kWriteBack,
            AllocPolicy::kWriteAllocate, 42);
    // Fill one set beyond capacity repeatedly; all other sets untouched.
    for (int i = 0; i < 100; ++i) {
        c.read((static_cast<Addr>(i) % 5) * g.set_stride());
    }
    // Lines in other sets must be absent.
    EXPECT_FALSE(c.probe(32));
}

TEST(Cache, MissRatio) {
    Cache c = make_lru();
    c.read(0x0);
    c.read(0x0);
    c.read(0x0);
    c.read(0x0);
    EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 0.25);
}

}  // namespace
}  // namespace rrb
