#include "cpu/core.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

/// A scripted bus: serves every request after a fixed latency, recording
/// (op, addr, ready) tuples. Lets us test core timing in isolation.
/// attach() the core after construction — completions dispatch through
/// the production on_bus_complete entry point, POD slots and all.
class FakePort final : public CoreBusPort {
public:
    explicit FakePort(Cycle service_latency) : latency_(service_latency) {}

    void attach(InOrderCore* core) { core_ = core; }

    void request(BusOp op, Addr addr, Cycle ready, BusSlot slot) override {
        log.push_back({op, addr, ready});
        pending_.push_back({ready + latency_, slot});
    }

    /// Delivers completions due at `now` (call before core.tick(now)).
    void tick(Cycle now) {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= now) {
                const BusSlot slot = it->second;
                it = pending_.erase(it);
                core_->on_bus_complete(slot, now);
            } else {
                ++it;
            }
        }
    }

    struct Entry {
        BusOp op;
        Addr addr;
        Cycle ready;
    };
    std::vector<Entry> log;

private:
    Cycle latency_;
    InOrderCore* core_ = nullptr;
    std::vector<std::pair<Cycle, BusSlot>> pending_;
};

CoreConfig test_config() {
    CoreConfig cfg;
    cfg.store_buffer_entries = 2;
    return cfg;
}

Cycle run_to_done(InOrderCore& core, FakePort& port, Cycle limit = 100000) {
    for (Cycle now = 0; now < limit; ++now) {
        port.tick(now);
        core.tick(now);
        if (core.done()) return core.finish_cycle();
    }
    ADD_FAILURE() << "core did not finish";
    return 0;
}

TEST(InOrderCore, NopKernelTiming) {
    // N nops of latency 1 + loop control per iteration.
    FakePort port(5);
    CoreConfig cfg = test_config();
    InOrderCore core(0, cfg, port);
    port.attach(&core);
    Program p = ProgramBuilder("nops").nop(10).iterations(3)
                    .loop_control(2).build();
    core.set_program(p);
    core.il1().warm(0);
    core.il1().warm(32);
    const Cycle finish = run_to_done(core, port);
    // 3 iterations x (10 nops + 2 loop control) = 36 cycles; finish when
    // the core observes completion.
    EXPECT_EQ(finish, 36u);
    EXPECT_EQ(core.stats().instructions, 30u);
    EXPECT_EQ(core.stats().nops, 30u);
    EXPECT_TRUE(port.log.empty());  // no bus traffic, IL1 code_base warm?
}

TEST(InOrderCore, AluLatencyCharged) {
    FakePort port(5);
    InOrderCore core(0, test_config(), port);
    port.attach(&core);
    core.set_program(
        ProgramBuilder("alu").alu(4, 3).iterations(1).loop_control(0).build());
    core.il1().warm(0);
    const Cycle finish = run_to_done(core, port);
    EXPECT_EQ(finish, 12u);
}

TEST(InOrderCore, Dl1HitLoadCostsDl1Latency) {
    FakePort port(5);
    CoreConfig cfg = test_config();
    cfg.dl1_latency = 1;
    InOrderCore core(0, cfg, port);
    port.attach(&core);
    Program p = ProgramBuilder("ld")
                    .load(AddrPattern::fixed(0x1000))
                    .iterations(4)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    core.dl1().warm(0x1000);
    const Cycle finish = run_to_done(core, port);
    EXPECT_EQ(finish, 4u);  // 4 x dl1_latency
    EXPECT_TRUE(port.log.empty());
    EXPECT_EQ(core.stats().load_miss_requests, 0u);
}

TEST(InOrderCore, Dl1MissIssuesRequestAfterLookup) {
    FakePort port(10);
    CoreConfig cfg = test_config();
    cfg.dl1_latency = 1;
    InOrderCore core(0, cfg, port);
    port.attach(&core);
    Program p = ProgramBuilder("ld")
                    .load(AddrPattern::fixed(0x2000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    run_to_done(core, port);
    ASSERT_EQ(port.log.size(), 1u);
    EXPECT_EQ(port.log[0].op, BusOp::kDataLoad);
    // Instruction starts at 0; request ready at dl1_latency = 1.
    EXPECT_EQ(port.log[0].ready, 1u);
}

TEST(InOrderCore, InjectionTimeIsDl1LatencyForBackToBackLoads) {
    // The cornerstone of Section 3: delta_rsk = dl1_latency.
    for (const std::uint32_t dl1_lat : {1u, 4u}) {
        FakePort port(9);
        CoreConfig cfg = test_config();
        cfg.dl1_latency = dl1_lat;
        InOrderCore core(0, cfg, port);
        port.attach(&core);
        // Two distinct lines mapping to different sets, never cached (cold
        // each iteration? no — use 5 same-set lines like rsk).
        const CacheGeometry g = cfg.dl1_geometry;
        ProgramBuilder b("rsk-like");
        for (std::uint32_t i = 0; i <= g.ways; ++i) {
            b.load(AddrPattern::fixed(0x4000 + i * g.set_stride()));
        }
        Program p = b.iterations(20).loop_control(2).build();
        core.set_program(p);
        run_to_done(core, port);
        const Histogram& delta = core.stats().load_injection_delta;
        ASSERT_FALSE(delta.empty());
        // Mode of injection delta = dl1_latency (body-internal pairs).
        EXPECT_EQ(delta.mode(), dl1_lat) << "dl1_latency " << dl1_lat;
        // Boundary pairs carry the +2 loop control.
        EXPECT_GT(delta.count(dl1_lat + 2), 0u);
    }
}

TEST(InOrderCore, NopsStretchInjectionTime) {
    FakePort port(9);
    CoreConfig cfg = test_config();
    cfg.dl1_latency = 1;
    InOrderCore core(0, cfg, port);
    port.attach(&core);
    const CacheGeometry g = cfg.dl1_geometry;
    const std::uint32_t k = 6;
    ProgramBuilder b("rsk-nop");
    for (std::uint32_t i = 0; i <= g.ways; ++i) {
        b.load(AddrPattern::fixed(0x4000 + i * g.set_stride()));
        b.nop(k);
    }
    core.set_program(b.iterations(10).loop_control(2).build());
    run_to_done(core, port);
    EXPECT_EQ(core.stats().load_injection_delta.mode(), k + 1u);
}

TEST(InOrderCore, StoreRetiresInOneCycleWhenBufferHasSpace) {
    FakePort port(50);
    InOrderCore core(0, test_config(), port);  // 2-entry buffer
    port.attach(&core);
    Program p = ProgramBuilder("st")
                    .store(AddrPattern::fixed(0x3000))
                    .nop(3)
                    .iterations(1)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    for (Cycle now = 0; now < 4; ++now) {
        port.tick(now);
        core.tick(now);
    }
    // store at 0 (1 cycle), nops at 1,2,3 -> all retired by cycle 4 even
    // though the drain is still in flight.
    EXPECT_EQ(core.stats().instructions, 4u);
    EXPECT_EQ(core.stats().stores, 1u);
}

TEST(InOrderCore, FullStoreBufferStalls) {
    FakePort port(100);  // very slow drains
    InOrderCore core(0, test_config(), port);  // 2 entries
    port.attach(&core);
    Program p = ProgramBuilder("st4")
                    .store(AddrPattern::fixed(0x3000))
                    .store(AddrPattern::fixed(0x3040))
                    .store(AddrPattern::fixed(0x3080))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    for (Cycle now = 0; now < 50; ++now) {
        port.tick(now);
        core.tick(now);
    }
    // Third store cannot retire until a drain completes at ~100.
    EXPECT_EQ(core.stats().stores, 2u);
    EXPECT_GT(core.stats().store_full_stall_cycles, 0u);
}

TEST(InOrderCore, DoneWaitsForStoreBufferDrain) {
    FakePort port(20);
    InOrderCore core(0, test_config(), port);
    port.attach(&core);
    Program p = ProgramBuilder("st")
                    .store(AddrPattern::fixed(0x3000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    const Cycle finish = run_to_done(core, port);
    EXPECT_GE(finish, 20u);  // drain latency dominates
    EXPECT_EQ(core.stats().store_drains, 1u);
}

TEST(InOrderCore, LoadWaitsForStoreBufferWhenConfigured) {
    FakePort port(30);
    CoreConfig cfg = test_config();
    cfg.loads_wait_store_buffer = true;
    InOrderCore core(0, cfg, port);
    port.attach(&core);
    Program p = ProgramBuilder("st-ld")
                    .store(AddrPattern::fixed(0x3000))
                    .load(AddrPattern::fixed(0x5000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    core.set_program(p);
    core.il1().warm(0);
    run_to_done(core, port);
    ASSERT_EQ(port.log.size(), 2u);
    EXPECT_EQ(port.log[0].op, BusOp::kDataStore);
    EXPECT_EQ(port.log[1].op, BusOp::kDataLoad);
    // Load request must come after the drain completed (ready > 30).
    EXPECT_GT(port.log[1].ready, 30u);
    EXPECT_GT(core.stats().load_gate_stall_cycles, 0u);
}

TEST(InOrderCore, IfetchMissOnColdCode) {
    FakePort port(9);
    InOrderCore core(0, test_config(), port);
    port.attach(&core);
    // 16 instructions = 2 IL1 lines -> 2 ifetch requests, cold.
    Program p = ProgramBuilder("nops").nop(16).iterations(2)
                    .code_base(0x9000).loop_control(0).build();
    core.set_program(p);
    run_to_done(core, port);
    EXPECT_EQ(core.stats().ifetch_requests, 2u);  // warm on iteration 2
}

TEST(InOrderCore, StoreDrainsHaveZeroInjectionTime) {
    // Consecutive buffer drains must be posted ready exactly at the
    // previous drain's completion (Section 5.3's delta = 0 property).
    FakePort port(7);
    InOrderCore core(0, test_config(), port);
    port.attach(&core);
    ProgramBuilder b("sts");
    for (int i = 0; i < 6; ++i) {
        b.store(AddrPattern::fixed(0x3000 + 64u * static_cast<Addr>(i)));
    }
    core.set_program(b.iterations(1).loop_control(0).build());
    core.il1().warm(0);
    run_to_done(core, port);
    ASSERT_EQ(port.log.size(), 6u);
    for (std::size_t i = 1; i < port.log.size(); ++i) {
        // completion of drain i-1 = ready_{i-1} + 7; next ready equals it.
        EXPECT_EQ(port.log[i].ready, port.log[i - 1].ready + 7)
            << "drain " << i;
    }
}

TEST(InOrderCore, FinishCycleRequiresDone) {
    FakePort port(5);
    InOrderCore core(0, test_config(), port);
    port.attach(&core);
    core.set_program(ProgramBuilder("n").nop(100).build());
    EXPECT_THROW((void)core.finish_cycle(), std::invalid_argument);
}

TEST(InOrderCore, ConfigValidation) {
    CoreConfig cfg;
    cfg.dl1_latency = 0;
    FakePort port(1);
    EXPECT_THROW(InOrderCore(0, cfg, port), std::invalid_argument);
    cfg = {};
    cfg.store_buffer_entries = 0;
    EXPECT_THROW(InOrderCore(0, cfg, port), std::invalid_argument);
}

}  // namespace
}  // namespace rrb
