// Tests of the sharded streaming reduction: the fixed shard plan, the
// fold/merge order contract, and the pWCET / white-box campaign paths
// being bit-identical at every job count and to their serial references.
#include "engine/reduce.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "engine/progress.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/config.h"

namespace rrb {
namespace {

// ---------------------------------------------------------- ReducePlan

TEST(ReducePlan, IsAPureFunctionOfCountAndCoversTheRange) {
    for (const std::uint64_t count : {1ull, 7ull, 256ull, 257ull, 100000ull}) {
        const engine::ReducePlan plan = engine::ReducePlan::for_count(count);
        ASSERT_GE(plan.shards(), 1u);
        EXPECT_LE(plan.shards(), engine::ReducePlan::kTargetShards);
        // Shards are contiguous, ascending, and partition [0, count).
        std::uint64_t next = 0;
        for (std::size_t s = 0; s < plan.shards(); ++s) {
            EXPECT_EQ(plan.shard_begin(s), next);
            EXPECT_GT(plan.shard_end(s), plan.shard_begin(s));
            next = plan.shard_end(s);
        }
        EXPECT_EQ(next, count);
    }
}

TEST(ReducePlan, SmallCountsGetOneRunPerShard) {
    const engine::ReducePlan plan = engine::ReducePlan::for_count(20);
    EXPECT_EQ(plan.shards(), 20u);
    EXPECT_EQ(plan.shard_size, 1u);
}

TEST(ReducePlan, SlicesPartitionTheShardsContiguously) {
    for (const std::uint64_t count : {7ull, 256ull, 100000ull}) {
        const engine::ReducePlan plan = engine::ReducePlan::for_count(count);
        for (const std::size_t slices : {1u, 2u, 3u, 4u, 7u}) {
            std::size_t next = 0;
            for (std::size_t i = 0; i < slices; ++i) {
                const engine::ReducePlan::ShardRange range =
                    plan.slice(i, slices);
                EXPECT_EQ(range.first, next)
                    << count << " sliced " << i << "/" << slices;
                EXPECT_LE(range.first, range.last);
                next = range.last;
            }
            EXPECT_EQ(next, plan.shards());
        }
    }
    // More slices than shards: trailing slices are empty, never lost.
    const engine::ReducePlan tiny = engine::ReducePlan::for_count(2);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        covered += tiny.slice(i, 5).size();
    }
    EXPECT_EQ(covered, tiny.shards());
    // Bad slice specs are rejected.
    EXPECT_THROW((void)tiny.slice(5, 5), std::invalid_argument);
    EXPECT_THROW((void)tiny.slice(0, 0), std::invalid_argument);
}

// -------------------------------------------------------- reduce_indexed

/// Toy accumulator recording the fold order — merge appends, so the
/// reduced order must be exactly 0..n-1 whatever the job count.
struct OrderAccumulator {
    std::vector<std::uint64_t> order;
    void fold(std::uint64_t i) { order.push_back(i); }
    void merge(const OrderAccumulator& other) {
        order.insert(order.end(), other.order.begin(), other.order.end());
    }
};

TEST(ReduceIndexed, FoldOrderIsRunOrderAtEveryJobCount) {
    for (const std::size_t jobs : {1u, 2u, 5u, 16u}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const OrderAccumulator acc = engine::reduce_indexed(
            1000,
            [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
            OrderAccumulator{}, eng);
        ASSERT_EQ(acc.order.size(), 1000u) << "jobs = " << jobs;
        for (std::uint64_t i = 0; i < 1000; ++i) {
            ASSERT_EQ(acc.order[i], i) << "jobs = " << jobs;
        }
    }
}

TEST(ReduceIndexedShards, ShardsEqualTheMonolithicFoldsAtEveryJobCount) {
    // Each shard accumulator is a pure function of (plan, shard, fold):
    // a slice computed alone must hold exactly the indices the
    // monolithic run folds into that shard, in the same order.
    const engine::ReducePlan plan = engine::ReducePlan::for_count(1000);
    for (const std::size_t jobs : {1u, 4u}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const engine::ReducePlan::ShardRange range =
            plan.slice(1, 3);  // some interior slice
        const std::vector<OrderAccumulator> shards =
            engine::reduce_indexed_shards(
                plan, range,
                [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
                OrderAccumulator{}, eng);
        ASSERT_EQ(shards.size(), range.size());
        for (std::size_t s = 0; s < shards.size(); ++s) {
            const std::size_t shard = range.first + s;
            ASSERT_EQ(shards[s].order.size(),
                      plan.shard_end(shard) - plan.shard_begin(shard));
            for (std::size_t k = 0; k < shards[s].order.size(); ++k) {
                ASSERT_EQ(shards[s].order[k], plan.shard_begin(shard) + k)
                    << "jobs " << jobs;
            }
        }
    }
}

TEST(ReduceIndexedShards, EmptyRangeYieldsNoShards) {
    const engine::ReducePlan plan = engine::ReducePlan::for_count(10);
    const std::vector<OrderAccumulator> none =
        engine::reduce_indexed_shards(
            plan, {4, 4},
            [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
            OrderAccumulator{});
    EXPECT_TRUE(none.empty());
    EXPECT_THROW(
        (void)engine::reduce_indexed_shards(
            plan, {4, 11},
            [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
            OrderAccumulator{}),
        std::invalid_argument);
}

TEST(ReduceIndexed, ZeroCountReturnsInit) {
    OrderAccumulator init;
    init.order = {42};
    const OrderAccumulator acc = engine::reduce_indexed(
        0, [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
        std::move(init));
    EXPECT_EQ(acc.order, (std::vector<std::uint64_t>{42}));
}

TEST(ReduceIndexed, InitSeedsEveryShard) {
    // The initial accumulator's configuration (here: block size) must
    // reach every shard-local copy.
    engine::EngineOptions eng;
    eng.jobs = 4;
    const StreamingBlockMaxima acc = engine::reduce_indexed(
        600,
        [](StreamingBlockMaxima& a, std::uint64_t i) {
            a.add(i, static_cast<double>(i % 17));
        },
        StreamingBlockMaxima(25), eng);
    EXPECT_EQ(acc.block_size(), 25u);
    EXPECT_EQ(acc.complete_blocks(), 24u);
}

TEST(ReduceIndexed, PropagatesFoldExceptions) {
    engine::EngineOptions eng;
    eng.jobs = 2;
    EXPECT_THROW(
        (void)engine::reduce_indexed(
            100,
            [](OrderAccumulator& a, std::uint64_t i) {
                if (i == 57) throw std::runtime_error("bad fold");
                a.fold(i);
            },
            OrderAccumulator{}, eng),
        std::runtime_error);
}

TEST(ReduceIndexed, ReportsProgressPerRun) {
    engine::ProgressCounter progress;
    engine::EngineOptions eng;
    eng.jobs = 3;
    eng.progress = &progress;
    (void)engine::reduce_indexed(
        500, [](OrderAccumulator& a, std::uint64_t i) { a.fold(i); },
        OrderAccumulator{}, eng);
    EXPECT_EQ(progress.total(), 500u);
    EXPECT_EQ(progress.completed(), 500u);
}

// ------------------------------------------------------ pWCET campaigns

PwcetCampaignOptions small_pwcet() {
    PwcetCampaignOptions opt;
    opt.protocol.runs = 48;
    opt.block_size = 8;
    opt.protocol.seed = 7;
    return opt;
}

MachineConfig test_config() { return MachineConfig::ngmp_ref(); }

Program test_scua() {
    return make_autobench(Autobench::kTblook, 0x0100'0000, 40, 2);
}

TEST(PwcetCampaign, BitIdenticalAtEveryJobCount) {
    const MachineConfig cfg = test_config();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);

    engine::EngineOptions serial_eng;
    serial_eng.jobs = 1;
    const PwcetCampaignResult serial = engine::run_pwcet_campaign(
        cfg, scua, contenders, small_pwcet(), serial_eng);

    for (const std::size_t jobs :
         {2u, 4u, static_cast<unsigned>(
                      engine::ThreadPool::default_jobs())}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const PwcetCampaignResult parallel = engine::run_pwcet_campaign(
            cfg, scua, contenders, small_pwcet(), eng);
        EXPECT_EQ(parallel.high_water_mark, serial.high_water_mark)
            << "jobs = " << jobs;
        EXPECT_EQ(parallel.low_water_mark, serial.low_water_mark);
        EXPECT_EQ(parallel.et_isolation, serial.et_isolation);
        EXPECT_EQ(parallel.nr, serial.nr);
        // Bit-identical floating point: the shard plan (and with it the
        // Chan merge tree) depends on runs, never on jobs.
        EXPECT_EQ(parallel.mean, serial.mean) << "jobs = " << jobs;
        EXPECT_EQ(parallel.stddev, serial.stddev);
        EXPECT_EQ(parallel.fit.mu, serial.fit.mu);
        EXPECT_EQ(parallel.fit.beta, serial.fit.beta);
        ASSERT_EQ(parallel.quantiles.size(), serial.quantiles.size());
        for (std::size_t q = 0; q < serial.quantiles.size(); ++q) {
            EXPECT_EQ(parallel.quantiles[q].pwcet,
                      serial.quantiles[q].pwcet);
        }
    }
}

TEST(PwcetCampaign, StreamedFitEqualsSerialBlockMaximaFit) {
    const MachineConfig cfg = test_config();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    const PwcetCampaignOptions opt = small_pwcet();

    const PwcetCampaignResult streamed = engine::run_pwcet_campaign(
        cfg, scua, contenders, opt);

    // The materializing reference: same run protocol, same seed.
    const HwmCampaignResult hwm =
        run_hwm_campaign(cfg, scua, contenders, opt.protocol);
    std::vector<double> times;
    times.reserve(hwm.exec_times.size());
    for (const Cycle t : hwm.exec_times) {
        times.push_back(static_cast<double>(t));
    }
    const GumbelFit reference =
        fit_gumbel(block_maxima(times, opt.block_size));

    EXPECT_EQ(streamed.high_water_mark, hwm.high_water_mark);
    EXPECT_EQ(streamed.low_water_mark, hwm.low_water_mark);
    EXPECT_EQ(streamed.fit.mu, reference.mu);
    EXPECT_EQ(streamed.fit.beta, reference.beta);
    EXPECT_EQ(streamed.fit.sample_size, reference.sample_size);
    EXPECT_EQ(streamed.runs, opt.protocol.runs);
    EXPECT_EQ(streamed.blocks, opt.protocol.runs / opt.block_size);
    // The memory contract: live state ~ runs/block_size, not ~ runs.
    EXPECT_LE(streamed.live_values,
              opt.protocol.runs / opt.block_size + 1);
}

TEST(PwcetCampaign, Validates) {
    const MachineConfig cfg = test_config();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    PwcetCampaignOptions opt = small_pwcet();
    opt.protocol.runs = 0;
    EXPECT_THROW(
        (void)engine::run_pwcet_campaign(cfg, scua, contenders, opt),
        std::invalid_argument);
    opt = small_pwcet();
    opt.block_size = 0;
    EXPECT_THROW(
        (void)engine::run_pwcet_campaign(cfg, scua, contenders, opt),
        std::invalid_argument);
    opt = small_pwcet();
    opt.exceedance = {0.0};
    EXPECT_THROW(
        (void)engine::run_pwcet_campaign(cfg, scua, contenders, opt),
        std::invalid_argument);
    EXPECT_THROW(
        (void)engine::run_pwcet_campaign(cfg, scua, {}, small_pwcet()),
        std::invalid_argument);
}

TEST(ReduceIndexed, PeaksOverThresholdRidesTheReducePathUnchanged) {
    // The POT accumulator satisfies the campaign-accumulator concept,
    // so it shards through reduce_indexed with no engine changes —
    // exceedances arrive in run order at every job count.
    StreamingPeaksOverThreshold serial(600.0);
    const auto value = [](std::uint64_t i) {
        return static_cast<double>((i * 733) % 1000);
    };
    for (std::uint64_t i = 0; i < 400; ++i) serial.add(i, value(i));

    for (const std::size_t jobs : {1u, 4u}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const StreamingPeaksOverThreshold sharded = engine::reduce_indexed(
            400,
            [&](StreamingPeaksOverThreshold& acc, std::uint64_t i) {
                acc.add(i, value(i));
            },
            StreamingPeaksOverThreshold(600.0), eng);
        EXPECT_EQ(sharded.count(), serial.count()) << "jobs " << jobs;
        EXPECT_EQ(sharded.exceedances(), serial.exceedances())
            << "jobs " << jobs;
    }
}

// -------------------------------------------------- white-box campaigns

TEST(WhiteboxCampaign, ShardedMergeEqualsSerialSingleThread) {
    const MachineConfig cfg = test_config();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    HwmCampaignOptions opt;
    opt.runs = 12;
    opt.seed = 5;

    // Serial reference: fold every run's measurement by hand.
    WhiteboxAccumulator serial;
    for (std::uint64_t run = 0; run < opt.runs; ++run) {
        serial.add(run, detail::hwm_campaign_measure(cfg, scua, contenders,
                                                     opt, run));
    }

    for (const std::size_t jobs : {1u, 4u}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const engine::WhiteboxCampaignResult sharded =
            engine::run_whitebox_campaign(cfg, scua, contenders, opt, eng);
        const WhiteboxAccumulator& stats = sharded.stats;
        EXPECT_EQ(stats.runs(), serial.runs()) << "jobs = " << jobs;
        EXPECT_EQ(stats.max_gamma(), serial.max_gamma());
        EXPECT_EQ(stats.gamma().buckets(), serial.gamma().buckets());
        EXPECT_EQ(stats.ready_contenders().buckets(),
                  serial.ready_contenders().buckets());
        EXPECT_EQ(stats.injection_delta().buckets(),
                  serial.injection_delta().buckets());
        EXPECT_EQ(stats.exec_times().values(),
                  serial.exec_times().values());
    }
}

TEST(WhiteboxCampaign, MeasureAgreesWithBlackBoxRun) {
    // The Measurement path must observe the exact execution time the
    // Cycle-only path reports — one protocol, two views.
    const MachineConfig cfg = test_config();
    const Program scua = test_scua();
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    HwmCampaignOptions opt;
    opt.runs = 4;
    opt.seed = 3;
    for (std::uint64_t run = 0; run < opt.runs; ++run) {
        const Measurement m = detail::hwm_campaign_measure(
            cfg, scua, contenders, opt, run);
        EXPECT_EQ(m.exec_time, detail::hwm_campaign_run(cfg, scua,
                                                        contenders, opt,
                                                        run));
        EXPECT_FALSE(m.gamma.empty());
    }
}

}  // namespace
}  // namespace rrb
