#include "bus/arbiter.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

std::vector<ArbCandidate> ready_set(CoreId n, std::initializer_list<CoreId> ready,
                                    Cycle duration = 2) {
    std::vector<ArbCandidate> cs(n);
    for (const CoreId c : ready) cs[c] = {true, duration};
    return cs;
}

TEST(RoundRobin, InitialPriorityIsCoreZero) {
    RoundRobinArbiter rr(4);
    const auto cs = ready_set(4, {0, 1, 2, 3});
    EXPECT_EQ(rr.pick(cs, 0), CoreId{0});
}

TEST(RoundRobin, RotationAfterGrant) {
    // Section 2: "If requester ci is granted access in a given round, the
    // priority ordering for the next round is ci+1, ci+2, ..., ci."
    RoundRobinArbiter rr(4);
    rr.granted(1, 0);
    EXPECT_EQ(rr.highest_priority(), 2u);
    const auto cs = ready_set(4, {0, 1, 2, 3});
    EXPECT_EQ(rr.pick(cs, 1), CoreId{2});
}

TEST(RoundRobin, GrantedCoreBecomesLowestPriority) {
    RoundRobinArbiter rr(4);
    rr.granted(2, 0);
    // 2 should only win if nobody else is ready.
    EXPECT_EQ(rr.pick(ready_set(4, {2, 0}), 1), CoreId{0});
    EXPECT_EQ(rr.pick(ready_set(4, {2}), 1), CoreId{2});
}

TEST(RoundRobin, WorkConservingSkipsIdleCores) {
    RoundRobinArbiter rr(4);
    rr.granted(0, 0);  // priority head = 1
    EXPECT_EQ(rr.pick(ready_set(4, {3}), 1), CoreId{3});
}

TEST(RoundRobin, NoReadyNoGrant) {
    RoundRobinArbiter rr(4);
    EXPECT_FALSE(rr.pick(ready_set(4, {}), 0).has_value());
}

TEST(RoundRobin, FullRotationSequence) {
    // All saturated: grants must rotate 0,1,2,3,0,1,...
    RoundRobinArbiter rr(4);
    const auto cs = ready_set(4, {0, 1, 2, 3});
    for (int round = 0; round < 3; ++round) {
        for (CoreId expected = 0; expected < 4; ++expected) {
            const auto winner = rr.pick(cs, 0);
            ASSERT_TRUE(winner.has_value());
            EXPECT_EQ(*winner, expected);
            rr.granted(*winner, 0);
        }
    }
}

TEST(RoundRobin, ResetRestoresHead) {
    RoundRobinArbiter rr(4);
    rr.granted(2, 0);
    rr.reset();
    EXPECT_EQ(rr.highest_priority(), 0u);
}

TEST(RoundRobin, SingleCoreAlwaysWins) {
    RoundRobinArbiter rr(1);
    EXPECT_EQ(rr.pick(ready_set(1, {0}), 0), CoreId{0});
    rr.granted(0, 0);
    EXPECT_EQ(rr.pick(ready_set(1, {0}), 1), CoreId{0});
}

TEST(FixedPriority, LowestIdWins) {
    FixedPriorityArbiter fp(4);
    EXPECT_EQ(fp.pick(ready_set(4, {3, 1, 2}), 0), CoreId{1});
    fp.granted(1, 0);
    EXPECT_EQ(fp.pick(ready_set(4, {3, 1, 2}), 1), CoreId{1});  // no rotation
}

TEST(FixedPriority, StarvationPossible) {
    FixedPriorityArbiter fp(2);
    for (Cycle i = 0; i < 10; ++i) {
        EXPECT_EQ(fp.pick(ready_set(2, {0, 1}), i), CoreId{0});
        fp.granted(0, i);
    }
}

TEST(Tdma, OnlySlotOwnerWins) {
    TdmaArbiter tdma(4, 10);
    const auto cs = ready_set(4, {0, 1, 2, 3}, 2);
    EXPECT_EQ(tdma.pick(cs, 0), CoreId{0});    // slot [0,10) -> core 0
    EXPECT_EQ(tdma.pick(cs, 10), CoreId{1});   // slot [10,20) -> core 1
    EXPECT_EQ(tdma.pick(cs, 35), CoreId{3});
    EXPECT_EQ(tdma.pick(cs, 40), CoreId{0});   // wraps
}

TEST(Tdma, NotWorkConserving) {
    TdmaArbiter tdma(4, 10);
    // Slot owner 0 idle, others ready: bus stays idle.
    EXPECT_FALSE(tdma.pick(ready_set(4, {1, 2, 3}), 5).has_value());
}

TEST(Tdma, TransactionMustFitSlot) {
    TdmaArbiter tdma(2, 10);
    const auto cs = ready_set(2, {0}, 4);
    EXPECT_TRUE(tdma.pick(cs, 0).has_value());
    EXPECT_TRUE(tdma.pick(cs, 6).has_value());   // ends exactly at 10
    EXPECT_FALSE(tdma.pick(cs, 7).has_value());  // would overrun
}

TEST(Tdma, RejectsZeroSlot) {
    EXPECT_THROW(TdmaArbiter(4, 0), std::invalid_argument);
}

TEST(Tdma, NextGrantCycleWaitsForOwnedSlot) {
    TdmaArbiter tdma(4, 10);  // core c owns slots [10c, 10c+10) mod 40
    // Core 0 in its own slot with room: granted immediately.
    EXPECT_EQ(tdma.next_grant_cycle(0, 4, 0), 0u);
    EXPECT_EQ(tdma.next_grant_cycle(0, 4, 6), 6u);  // ends exactly at 10
    // Core 0 in its own slot but overrunning it: next owned slot.
    EXPECT_EQ(tdma.next_grant_cycle(0, 5, 6), 40u);
    // Core 2 while core 0 owns the slot: start of core 2's slot.
    EXPECT_EQ(tdma.next_grant_cycle(2, 4, 3), 20u);
    // Core 1 just past its own slot: a full rotation away.
    EXPECT_EQ(tdma.next_grant_cycle(1, 4, 20), 50u);
}

TEST(Tdma, NextGrantCycleMatchesPickAtTheReturnedCycle) {
    // The bound must be exact: pick() grants at the returned cycle and
    // at no earlier one — the cycle skipper's correctness condition.
    TdmaArbiter tdma(3, 7);
    for (CoreId core = 0; core < 3; ++core) {
        for (Cycle duration = 1; duration <= 7; ++duration) {
            for (Cycle earliest = 0; earliest < 45; ++earliest) {
                const Cycle g =
                    tdma.next_grant_cycle(core, duration, earliest);
                ASSERT_NE(g, kNoCycle);
                auto sole = [&](Cycle now) {
                    return tdma.pick(ready_set(3, {core}, duration), now)
                        .has_value();
                };
                ASSERT_TRUE(sole(g))
                    << "core " << core << " dur " << duration
                    << " earliest " << earliest;
                for (Cycle t = earliest; t < g; ++t) {
                    ASSERT_FALSE(sole(t))
                        << "core " << core << " dur " << duration
                        << " earlier grant at " << t;
                }
            }
        }
    }
}

TEST(Tdma, NextGrantCycleNeverFitsOversizedTransaction) {
    TdmaArbiter tdma(2, 10);
    EXPECT_EQ(tdma.next_grant_cycle(0, 11, 0), kNoCycle);
}

TEST(WorkConserving, NextGrantCycleIsTheReadyCycle) {
    // Work-conserving policies grant any ready sole candidate at once:
    // the default bound is the request's own earliest cycle.
    RoundRobinArbiter rr(4);
    FixedPriorityArbiter fp(4);
    EXPECT_EQ(rr.next_grant_cycle(2, 9, 17), 17u);
    EXPECT_EQ(fp.next_grant_cycle(3, 1, 0), 0u);
}

TEST(Factory, MakesRequestedKind) {
    EXPECT_EQ(make_arbiter(ArbiterKind::kRoundRobin, 4)->name(),
              "round-robin");
    EXPECT_EQ(make_arbiter(ArbiterKind::kFixedPriority, 4)->name(),
              "fixed-priority");
    EXPECT_EQ(make_arbiter(ArbiterKind::kTdma, 4, 12)->name(), "tdma");
}

}  // namespace
}  // namespace rrb
