// Tests of the store-span estimation path (Figure 7(b) physics) and the
// cross-checked combined methodology.
#include "core/store_span.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

UbdEstimatorOptions fast_options(std::uint32_t k_max) {
    UbdEstimatorOptions opt;
    opt.k_max = k_max;
    opt.unroll = 8;
    opt.rsk_iterations = 25;
    return opt;
}

TEST(StoreSpan, RecoversUbd27OnNgmpRef) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const StoreSpanEstimate e =
        estimate_ubd_store_span(cfg, fast_options(60));
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 27u);
}

TEST(StoreSpan, RecoversUbd27OnNgmpVar) {
    // The store path is insensitive to DL1 latency: drains inject with
    // delta = 0 on both architectures.
    const MachineConfig cfg = MachineConfig::ngmp_var();
    const StoreSpanEstimate e =
        estimate_ubd_store_span(cfg, fast_options(60));
    ASSERT_TRUE(e.found);
    EXPECT_EQ(e.ubd, 27u);
}

TEST(StoreSpan, PlateauThenRampThenZero) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const StoreSpanEstimate e =
        estimate_ubd_store_span(cfg, fast_options(60));
    ASSERT_TRUE(e.found);
    // Plateau ends roughly at k = lbus - 1 = 8; zero from k = Nc*lbus - 1.
    EXPECT_EQ(e.plateau_end, 8u);
    EXPECT_EQ(e.first_zero, 35u);
    // Monotone non-increasing across the ramp.
    for (std::size_t k = e.plateau_end; k + 1 < e.first_zero; ++k) {
        EXPECT_GE(e.dbus[k], e.dbus[k + 1]) << "k " << k;
    }
    // Exactly zero afterwards (deterministic simulation).
    for (std::size_t k = e.first_zero; k < e.dbus.size(); ++k) {
        EXPECT_LE(e.dbus[k], e.dbus[0] * 0.02) << "k " << k;
    }
}

TEST(StoreSpan, SweepTooShortReportsNotFound) {
    // k_max = 20 < Nc*lbus - 1 = 35: the zero region is never reached.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const StoreSpanEstimate e =
        estimate_ubd_store_span(cfg, fast_options(20));
    EXPECT_FALSE(e.found);
}

TEST(StoreSpan, WorksAcrossPlatformShapes) {
    for (const auto& [cores, lbus] :
         {std::pair<CoreId, Cycle>{4, 5}, {8, 5}, {4, 13}}) {
        const MachineConfig cfg = MachineConfig::scaled(cores, lbus);
        UbdEstimatorOptions opt =
            fast_options(static_cast<std::uint32_t>(cores * lbus + 10));
        const StoreSpanEstimate e = estimate_ubd_store_span(cfg, opt);
        ASSERT_TRUE(e.found) << cores << "x" << lbus;
        EXPECT_EQ(e.ubd, cfg.ubd_analytic()) << cores << "x" << lbus;
    }
}

TEST(CrossCheck, BothPathsAgreeOnNgmp) {
    for (const bool variant : {false, true}) {
        const MachineConfig cfg =
            variant ? MachineConfig::ngmp_var() : MachineConfig::ngmp_ref();
        const CrossCheckedEstimate e =
            estimate_ubd_cross_checked(cfg, fast_options(60));
        EXPECT_TRUE(e.agree) << (variant ? "var" : "ref");
        EXPECT_EQ(e.ubd, 27u);
        EXPECT_EQ(e.load_path.ubd, e.store_path.ubd);
    }
}

TEST(CrossCheck, DisagreementIsReportedNotHidden) {
    // Under a fixed-priority arbiter the load path (top-priority core)
    // finds the blocking period lbus while the store path sees a
    // different structure; the cross-check must not report agreement on
    // ubd = (Nc-1)*lbus.
    MachineConfig cfg = MachineConfig::ngmp_ref();
    cfg.arbiter = ArbiterKind::kFixedPriority;
    const CrossCheckedEstimate e =
        estimate_ubd_cross_checked(cfg, fast_options(60));
    if (e.agree) {
        EXPECT_NE(e.ubd, cfg.ubd_analytic());
    } else {
        SUCCEED();
    }
}

}  // namespace
}  // namespace rrb
