#include "machine/machine.h"

#include <gtest/gtest.h>

#include "kernels/rsk.h"

namespace rrb {
namespace {

TEST(MachineConfig, NgmpRefMatchesPaperNumbers) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    EXPECT_EQ(cfg.num_cores, 4u);
    EXPECT_EQ(cfg.load_hit_service(), 9u);  // 6 L2 hit + 3 transfer
    EXPECT_EQ(cfg.ubd_analytic(), 27u);     // (4-1) * 9
    EXPECT_EQ(cfg.core.dl1_latency, 1u);
    EXPECT_EQ(cfg.core.dl1_geometry.size_bytes, 16u * 1024u);
    EXPECT_EQ(cfg.core.dl1_geometry.ways, 4u);
    EXPECT_EQ(cfg.core.dl1_geometry.line_bytes, 32u);
    EXPECT_EQ(cfg.l2_geometry.size_bytes, 256u * 1024u);
}

TEST(MachineConfig, NgmpVarShiftsInjectionTime) {
    const MachineConfig cfg = MachineConfig::ngmp_var();
    EXPECT_EQ(cfg.core.dl1_latency, 4u);
    EXPECT_EQ(cfg.ubd_analytic(), 27u);  // same bus, same ubd
}

TEST(MachineConfig, TextbookMatchesFigure3) {
    const MachineConfig cfg = MachineConfig::textbook();
    EXPECT_EQ(cfg.load_hit_service(), 2u);
    EXPECT_EQ(cfg.ubd_analytic(), 6u);
}

TEST(MachineConfig, ValidationCatchesBadTdmaSlot) {
    MachineConfig cfg = MachineConfig::ngmp_ref();
    cfg.arbiter = ArbiterKind::kTdma;
    cfg.tdma_slot_cycles = 4;  // < lbus = 9
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Machine, SingleCoreNopProgramFinishes) {
    Machine m(MachineConfig::ngmp_ref());
    m.load_program(0, ProgramBuilder("n").nop(8).iterations(10).build());
    const RunResult r = m.run(100000);
    EXPECT_FALSE(r.deadline_reached);
    EXPECT_NE(r.finish_cycle[0], kNoCycle);
}

TEST(Machine, IsolatedRskLoadTiming) {
    // In isolation each rsk load costs dl1_latency + lbus; cold ifetches
    // and loop control add a bounded overhead.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams params;
    params.unroll = 8;
    params.iterations = 100;
    Machine m(cfg);
    const Program rsk = make_rsk(params);
    m.load_program(0, rsk);
    const RunResult r = m.run(10'000'000);
    ASSERT_FALSE(r.deadline_reached);
    const auto loads = static_cast<double>(rsk.body.size()) * 100.0;
    const double per_load =
        static_cast<double>(r.finish_cycle[0]) / loads;
    // dl1(1) + lbus(9) = 10, plus <5% overhead.
    EXPECT_GE(per_load, 10.0);
    EXPECT_LE(per_load, 10.5);
    // Every load missed DL1 and went to the bus.
    EXPECT_EQ(m.core(0).stats().load_miss_requests,
              static_cast<std::uint64_t>(loads));
}

TEST(Machine, RskLoadsAlwaysHitL2) {
    Machine m(MachineConfig::ngmp_ref());
    RskParams params;
    params.unroll = 4;
    params.iterations = 50;
    m.load_program(0, make_rsk(params));
    const RunResult r = m.run(10'000'000);
    ASSERT_FALSE(r.deadline_reached);
    const CacheStats& l2 = m.l2().stats(0);
    // Only cold misses (5 data lines + a few code lines).
    EXPECT_LE(l2.read_misses, 16u);
    EXPECT_GT(l2.read_hits, 200u);
    // Nothing reached DRAM after the cold fills.
    EXPECT_LE(m.dram().stats().accesses(), 16u);
}

TEST(Machine, L2MissGoesToDramAndBack) {
    MachineConfig cfg = MachineConfig::ngmp_ref();
    Machine m(cfg);
    // Strided walk over 256KB >> 64KB partition: repeated L2 misses.
    Program p = ProgramBuilder("big-walk")
                    .load(AddrPattern::stride(0, 32, 256 * 1024))
                    .iterations(4096)
                    .build();
    m.load_program(0, p);
    const RunResult r = m.run(50'000'000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_GT(m.dram().stats().reads, 2048u);
    // Split transactions: miss requests + fill responses both counted as
    // bus requests.
    EXPECT_GT(m.bus().counters(0).requests, 4096u);
}

TEST(Machine, StoreRskDrainsThroughBus) {
    Machine m(MachineConfig::ngmp_ref());
    RskParams params;
    params.access = OpKind::kStore;
    params.unroll = 2;
    params.iterations = 20;
    m.load_program(0, make_rsk(params));
    const RunResult r = m.run(10'000'000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_EQ(m.core(0).stats().store_drains,
              m.core(0).stats().stores);
    EXPECT_GE(m.core(0).stats().stores, 200u);
}

TEST(Machine, RunUntilCoreLeavesContendersRunning) {
    Machine m(MachineConfig::ngmp_ref());
    m.load_program(0, ProgramBuilder("short").nop(4).iterations(10).build());
    m.load_program(1,
                   ProgramBuilder("long").nop(4).iterations(1'000'000).build());
    const RunResult r = m.run_until_core(0, 1'000'000);
    EXPECT_FALSE(r.deadline_reached);
    EXPECT_NE(r.finish_cycle[0], kNoCycle);
    EXPECT_EQ(r.finish_cycle[1], kNoCycle);  // still running
}

TEST(Machine, DeadlineReported) {
    Machine m(MachineConfig::ngmp_ref());
    m.load_program(0, ProgramBuilder("n").nop(4).iterations(1'000'000).build());
    const RunResult r = m.run(100);
    EXPECT_TRUE(r.deadline_reached);
}

TEST(Machine, FourRskSaturateBus) {
    // Section 4.3's confidence check: Nc rsk drive utilization to ~100%.
    Machine m(MachineConfig::ngmp_ref());
    RskParams params;
    params.unroll = 8;
    params.iterations = 200;
    for (CoreId c = 0; c < 4; ++c) {
        RskParams p = params;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        m.load_program(c, make_rsk(p));
    }
    const RunResult r = m.run_until_core(0, 50'000'000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_GE(m.bus().utilization(m.now()), 0.97);
}

TEST(Machine, CoreIdValidation) {
    Machine m(MachineConfig::ngmp_ref());
    EXPECT_THROW((void)m.core(4), std::invalid_argument);
    EXPECT_THROW(m.load_program(9, ProgramBuilder("n").nop(1).build()),
                 std::invalid_argument);
    EXPECT_THROW(m.run_until_core(0), std::invalid_argument);  // no program
}

}  // namespace
}  // namespace rrb
