#include "sim/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace rrb {
namespace {

TEST(Pcg32, DeterministicAcrossInstances) {
    Pcg32 a(42, 7);
    Pcg32 b(42, 7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next_u32(), b.next_u32());
    }
}

TEST(Pcg32, DistinctSeedsDiverge) {
    Pcg32 a(1);
    Pcg32 b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u32() == b.next_u32()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Pcg32, DistinctStreamsDiverge) {
    Pcg32 a(42, 1);
    Pcg32 b(42, 2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u32() == b.next_u32()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Pcg32, NextBelowStaysInRange) {
    Pcg32 rng(123);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(Pcg32, NextBelowOneIsAlwaysZero) {
    Pcg32 rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.next_below(1), 0u);
    }
}

TEST(Pcg32, NextBelowRejectsZeroBound) {
    Pcg32 rng(5);
    EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Pcg32, NextInInclusiveRange) {
    Pcg32 rng(9);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint32_t v = rng.next_in(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values reached
}

TEST(Pcg32, NextInRejectsEmptyRange) {
    Pcg32 rng(1);
    EXPECT_THROW(rng.next_in(3, 2), std::invalid_argument);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
    Pcg32 rng(77);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Pcg32, UniformityRoughCheck) {
    Pcg32 rng(2024);
    std::array<int, 8> buckets{};
    const int n = 80000;
    for (int i = 0; i < n; ++i) {
        ++buckets[rng.next_below(8)];
    }
    for (const int count : buckets) {
        EXPECT_NEAR(count, n / 8, n / 80);  // within 10%
    }
}

TEST(Pcg32, BernoulliEdges) {
    Pcg32 rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.next_bool(0.0));
        EXPECT_TRUE(rng.next_bool(1.0));
    }
}

TEST(Pcg32, BernoulliRoughProbability) {
    Pcg32 rng(31337);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (rng.next_bool(0.25)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace rrb
