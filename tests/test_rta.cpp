#include "rta/response_time.h"
#include "rta/task.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

Task make_task(const char* name, Cycle c, Cycle t, Cycle d = 0) {
    return Task{name, c, t, d == 0 ? t : d};
}

TEST(Task, ValidationRules) {
    EXPECT_THROW(make_task("t", 0, 10).validate(), std::invalid_argument);
    EXPECT_THROW(make_task("t", 5, 0).validate(), std::invalid_argument);
    EXPECT_THROW(make_task("t", 5, 10, 12).validate(),
                 std::invalid_argument);  // D > T
    EXPECT_NO_THROW(make_task("t", 5, 10, 8).validate());
    EXPECT_NO_THROW(make_task("t", 9, 10, 8).validate());  // C > D allowed
}

TEST(Task, Utilization) {
    EXPECT_DOUBLE_EQ(make_task("t", 25, 100).utilization(), 0.25);
}

TEST(TaskSet, DeadlineMonotonicSort) {
    TaskSet set;
    set.add(make_task("slow", 1, 100, 90));
    set.add(make_task("fast", 1, 50, 20));
    set.add(make_task("mid", 1, 80, 40));
    set.sort_deadline_monotonic();
    EXPECT_EQ(set[0].name, "fast");
    EXPECT_EQ(set[1].name, "mid");
    EXPECT_EQ(set[2].name, "slow");
}

TEST(Rta, SingleTaskResponseIsWcet) {
    TaskSet set;
    set.add(make_task("t", 7, 20));
    EXPECT_EQ(response_time(set, 0), 7u);
}

TEST(Rta, ClassicTwoTaskExample) {
    // C1=1,T1=4 and C2=2,T2=6: R2 = 2 + ceil(R2/4)*1 -> R2 = 3.
    TaskSet set;
    set.add(make_task("hp", 1, 4));
    set.add(make_task("lp", 2, 6));
    EXPECT_EQ(response_time(set, 0), 1u);
    EXPECT_EQ(response_time(set, 1), 3u);
    EXPECT_TRUE(response_time_analysis(set).schedulable);
}

TEST(Rta, TextbookThreeTaskExample) {
    // Liu-Layland style: C=(1,2,3), T=(4,6,12):
    // R1=1; R2=2+1=3... iterate: R2 = 2 + ceil(3/4)*1 = 3.
    // R3 = 3 + ceil(R/4)*1 + ceil(R/6)*2; fixed point: R3 = 10.
    TaskSet set;
    set.add(make_task("a", 1, 4));
    set.add(make_task("b", 2, 6));
    set.add(make_task("c", 3, 12));
    const ResponseTimeResult r = response_time_analysis(set);
    ASSERT_TRUE(r.schedulable);
    EXPECT_EQ(r.response_times[0], 1u);
    EXPECT_EQ(r.response_times[1], 3u);
    EXPECT_EQ(r.response_times[2], 10u);
}

TEST(Rta, OverloadDetected) {
    TaskSet set;
    set.add(make_task("a", 3, 5));
    set.add(make_task("b", 3, 6));
    const ResponseTimeResult r = response_time_analysis(set);
    EXPECT_FALSE(r.schedulable);
    ASSERT_TRUE(r.first_failure.has_value());
    EXPECT_EQ(*r.first_failure, 1u);
}

TEST(Rta, WcetBeyondDeadlineUnschedulable) {
    TaskSet set;
    set.add(make_task("t", 15, 20, 10));
    const ResponseTimeResult r = response_time_analysis(set);
    EXPECT_FALSE(r.schedulable);
}

TEST(Rta, ResponseTimeMonotoneInWcet) {
    // Property: inflating any WCET never decreases any response time.
    for (Cycle bump = 0; bump <= 3; ++bump) {
        TaskSet a;
        a.add(make_task("hp", 2 + bump, 10));
        a.add(make_task("lp", 4, 20));
        const Cycle r_prev = [&] {
            TaskSet b;
            b.add(make_task("hp", 2, 10));
            b.add(make_task("lp", 4, 20));
            return response_time(b, 1);
        }();
        EXPECT_GE(response_time(a, 1), r_prev);
    }
}

TEST(PadTaskSet, AppliesNrTimesUbd) {
    const std::vector<Task> skeleton = {make_task("a", 1, 1000, 500),
                                        make_task("b", 1, 2000, 1500)};
    const TaskSet padded = pad_task_set(skeleton, {100, 200}, {10, 20}, 27);
    EXPECT_EQ(padded[0].wcet, 100u + 270u);
    EXPECT_EQ(padded[1].wcet, 200u + 540u);
}

TEST(PadTaskSet, ShapeValidated) {
    const std::vector<Task> skeleton = {make_task("a", 1, 1000)};
    EXPECT_THROW(pad_task_set(skeleton, {1, 2}, {1}, 27),
                 std::invalid_argument);
}

TEST(MaxSchedulableUbd, FindsTheCliff) {
    // Two tasks whose padded set is schedulable up to some ubd*; the
    // binary search must find exactly the largest schedulable value.
    const std::vector<Task> skeleton = {make_task("a", 1, 1000, 400),
                                        make_task("b", 1, 1000, 900)};
    const std::vector<Cycle> isolated = {100, 200};
    const std::vector<std::uint64_t> requests = {10, 10};
    const auto best = max_schedulable_ubd(skeleton, isolated, requests, 200);
    ASSERT_TRUE(best.has_value());
    // Verify the cliff by direct evaluation.
    EXPECT_TRUE(response_time_analysis(
                    pad_task_set(skeleton, isolated, requests, *best))
                    .schedulable);
    EXPECT_FALSE(response_time_analysis(
                     pad_task_set(skeleton, isolated, requests, *best + 1))
                     .schedulable);
}

TEST(MaxSchedulableUbd, NulloptWhenHopeless) {
    const std::vector<Task> skeleton = {make_task("a", 1, 100, 50)};
    const auto best = max_schedulable_ubd(skeleton, {80}, {10}, 50);
    EXPECT_FALSE(best.has_value());
}

}  // namespace
}  // namespace rrb
