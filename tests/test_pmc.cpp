#include "machine/pmc.h"

#include <gtest/gtest.h>

#include "kernels/rsk.h"

namespace rrb {
namespace {

TEST(Pmc, CountersMatchUnderlyingStats) {
    Machine m(MachineConfig::ngmp_ref());
    RskParams p;
    p.unroll = 4;
    p.iterations = 20;
    m.load_program(0, make_rsk(p));
    m.warm_static_footprint(0);
    m.run(1'000'000);

    const PmcSnapshot snap = read_pmcs(m, 0);
    EXPECT_EQ(snap.cycles, m.now());
    EXPECT_EQ(snap.instructions, m.core(0).stats().instructions);
    EXPECT_EQ(snap.bus_requests, m.bus().counters(0).requests);
    EXPECT_EQ(snap.dcache_misses, m.core(0).dl1().stats().misses());
    // Every rsk load misses DL1 and goes to the bus.
    EXPECT_EQ(snap.bus_requests, snap.dcache_misses);
}

TEST(Pmc, UtilizationDerivedConsistently) {
    Machine m(MachineConfig::ngmp_ref());
    RskParams p;
    p.unroll = 4;
    p.iterations = 50;
    for (CoreId c = 0; c < 4; ++c) {
        RskParams pc = p;
        pc.data_base = 0x0010'0000 + c * 0x0010'0000;
        pc.code_base = c * 0x0001'0000;
        m.load_program(c, make_rsk(pc));
        m.warm_static_footprint(c);
    }
    m.run_until_core(0, 10'000'000);

    const PmcSnapshot snap = read_pmcs(m, 0);
    EXPECT_GT(snap.total_bus_utilization(), 0.97);  // saturated
    EXPECT_GT(snap.core_bus_utilization(), 0.2);    // ~1/4 of the bus
    EXPECT_LT(snap.core_bus_utilization(), 0.3);
    EXPECT_LE(snap.core_bus_utilization(), snap.total_bus_utilization());
    // Aggregate of per-core busy cycles equals total busy cycles.
    std::uint64_t sum = 0;
    for (CoreId c = 0; c < 4; ++c) sum += read_pmcs(m, c).core_bus_busy_cycles;
    EXPECT_EQ(sum, snap.total_bus_busy_cycles);
}

TEST(Pmc, MeanWaitReflectsSynchrony) {
    Machine m(MachineConfig::ngmp_ref());
    RskParams p;
    p.unroll = 4;
    p.iterations = 60;
    for (CoreId c = 0; c < 4; ++c) {
        RskParams pc = p;
        pc.data_base = 0x0010'0000 + c * 0x0010'0000;
        pc.code_base = c * 0x0001'0000;
        pc.iterations = c == 0 ? 60 : 100000;
        m.load_program(c, make_rsk(pc));
        m.warm_static_footprint(c);
    }
    m.run_until_core(0, 10'000'000);
    const PmcSnapshot snap = read_pmcs(m, 0);
    // Under the synchrony effect nearly every request waits ubd-1 = 26.
    EXPECT_NEAR(snap.mean_wait(), 26.0, 0.5);
}

TEST(Pmc, EmptyMachineZeros) {
    Machine m(MachineConfig::ngmp_ref());
    const PmcSnapshot snap = read_pmcs(m, 1);
    EXPECT_EQ(snap.bus_requests, 0u);
    EXPECT_DOUBLE_EQ(snap.core_bus_utilization(), 0.0);
    EXPECT_DOUBLE_EQ(snap.mean_wait(), 0.0);
}

TEST(Pmc, RawAndFormat) {
    Machine m(MachineConfig::ngmp_ref());
    const PmcSnapshot snap = read_pmcs(m, 0);
    EXPECT_EQ(snap.raw().size(), 8u);
    const std::string text = snap.format();
    EXPECT_NE(text.find("0x17"), std::string::npos);
    EXPECT_NE(text.find("0x18"), std::string::npos);
    EXPECT_NE(text.find("total-utilization"), std::string::npos);
}

TEST(Pmc, CoreIdValidated) {
    Machine m(MachineConfig::ngmp_ref());
    EXPECT_THROW((void)read_pmcs(m, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rrb
