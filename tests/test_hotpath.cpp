// Differential harness for the hot-path simulator (PR 5).
//
// The production campaign path — per-worker machine reuse
// (engine::MachineLease + Machine::reset_keep_programs), POD completion
// tokens, and event-driven cycle skipping — must be *bit-identical* to
// the semantics it replaced: a fresh Machine per run stepped cycle by
// cycle. These tests run both paths over a grid of configurations
// (ref/var platforms, 1–4 cores, every arbiter, DRAM-heavy and
// store-heavy kernels, refresh on/off), seeds and start delays, and
// compare finish cycles, the full black-box/white-box Measurement
// (PMCs and histograms), and per-core stall counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "engine/campaign_engine.h"
#include "engine/machine_lease.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace rrb {
namespace {

/// The pre-optimization reference semantics: fresh machine, naive
/// cycle-by-cycle stepping, full program loads.
Measurement reference_measure(const MachineConfig& config,
                              const Program& scua,
                              const std::vector<Program>& contenders,
                              const HwmCampaignOptions& options,
                              std::uint64_t run_index) {
    Machine machine(config);
    machine.set_cycle_skipping(false);
    std::uint64_t no_campaign = 0;
    const Cycle finish = detail::execute_campaign_run(
        machine, no_campaign, scua, contenders, options, run_index);
    return detail::snapshot_measurement(machine, 0, finish,
                                        /*deadline_reached=*/false);
}

void expect_same_histogram(const Histogram& a, const Histogram& b,
                           const std::string& what) {
    EXPECT_EQ(a.total(), b.total()) << what;
    EXPECT_EQ(a.buckets(), b.buckets()) << what;
}

void expect_same_measurement(const Measurement& hot, const Measurement& ref,
                             const std::string& what) {
    EXPECT_EQ(hot.exec_time, ref.exec_time) << what;
    EXPECT_EQ(hot.bus_requests, ref.bus_requests) << what;
    // Doubles must be bit-equal: both sides compute the same integer
    // ratios in the same order.
    EXPECT_EQ(hot.bus_utilization, ref.bus_utilization) << what;
    EXPECT_EQ(hot.scua_bus_share, ref.scua_bus_share) << what;
    EXPECT_EQ(hot.max_gamma, ref.max_gamma) << what;
    expect_same_histogram(hot.gamma, ref.gamma, what + " gamma");
    expect_same_histogram(hot.ready_contenders, ref.ready_contenders,
                          what + " ready_contenders");
    expect_same_histogram(hot.injection_delta, ref.injection_delta,
                          what + " injection_delta");
    EXPECT_EQ(hot.deadline_reached, ref.deadline_reached) << what;
}

struct GridPoint {
    std::string name;
    MachineConfig config;
};

std::vector<GridPoint> config_grid() {
    std::vector<GridPoint> grid;
    grid.push_back({"ngmp_ref", MachineConfig::ngmp_ref()});
    grid.push_back({"ngmp_var", MachineConfig::ngmp_var()});
    grid.push_back({"scaled_2x5", MachineConfig::scaled(2, 5)});
    grid.push_back({"textbook", MachineConfig::textbook()});
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kTdma;  // non-work-conserving skipping
        grid.push_back({"tdma", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kFixedPriority;
        grid.push_back({"fixed", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kWeightedRoundRobin;
        cfg.wrr_weights = {3, 1, 1, 1};
        grid.push_back({"wrr", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.dram.refresh_interval = 1560;  // refresh boundaries vs skip
        cfg.dram.refresh_duration = 26;
        grid.push_back({"refresh", cfg});
    }
    return grid;
}

/// Scuas chosen to exercise distinct hot-path machinery: L2-hit loads
/// (cacheb), nop/alu batching (a2time), the DRAM split-transaction path
/// (a 256KB walk misses the 64KB L2 partition), and the store drain /
/// full-buffer / load-gate stalls (store rsk with interleaved loads).
std::vector<Program> scua_set() {
    std::vector<Program> scuas;
    scuas.push_back(make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9));
    scuas.push_back(make_autobench(Autobench::kA2time, 0x0100'0000, 10, 3));
    scuas.push_back(ProgramBuilder("dram-walk")
                        .load(AddrPattern::stride(0x0200'0000, 32,
                                                  256 * 1024))
                        .nop(2)
                        .iterations(300)
                        .build());
    {
        RskParams params;
        params.access = OpKind::kStore;
        params.unroll = 2;
        params.iterations = 25;
        Program store_heavy = make_rsk(params);
        // A trailing load closes the store buffer gate every pass.
        store_heavy.body.push_back(
            {OpKind::kLoad, 1, AddrPattern::fixed(0x0030'0000)});
        store_heavy.name = "store-heavy";
        scuas.push_back(store_heavy);
    }
    return scuas;
}

TEST(HotPathDifferential, GridIsBitIdenticalToFreshNaiveReference) {
    for (const GridPoint& point : config_grid()) {
        const std::vector<Program> contenders =
            make_rsk_contenders(point.config, OpKind::kLoad);
        for (const Program& scua : scua_set()) {
            for (const std::uint64_t seed : {1ULL, 7ULL}) {
                HwmCampaignOptions options;
                options.runs = 3;
                options.seed = seed;
                options.max_start_delay = 997;
                for (std::uint64_t run = 0; run < options.runs; ++run) {
                    const std::string what = point.name + "/" + scua.name +
                                             "/seed" +
                                             std::to_string(seed) + "/run" +
                                             std::to_string(run);
                    // Production: leased machine (reset_keep_programs on
                    // repeat runs) + cycle skipping + POD tokens.
                    const Measurement hot = detail::hwm_campaign_measure(
                        point.config, scua, contenders, options, run);
                    const Measurement ref = reference_measure(
                        point.config, scua, contenders, options, run);
                    expect_same_measurement(hot, ref, what);
                }
            }
        }
    }
}

TEST(HotPathDifferential, StallCountersMatchNaivePath) {
    // Stall PMCs (full store buffer, load gate) charge per cycle; the
    // skipper must observe every one of those cycles. Drive a reused
    // skipping machine and fresh naive machines over the same runs and
    // compare the whole per-core counter set.
    const MachineConfig config = MachineConfig::ngmp_ref();
    RskParams params;
    params.access = OpKind::kStore;
    params.unroll = 2;
    params.iterations = 30;
    Program scua = make_rsk(params);
    scua.body.push_back({OpKind::kLoad, 1, AddrPattern::fixed(0x0030'0000)});
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kStore);
    HwmCampaignOptions options;
    options.runs = 4;

    Machine hot(config);  // reused across runs, skipping on (default)
    std::uint64_t hot_campaign = 0;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        const Cycle hot_finish = detail::execute_campaign_run(
            hot, hot_campaign, scua, contenders, options, run);

        Machine ref(config);
        ref.set_cycle_skipping(false);
        std::uint64_t ref_campaign = 0;
        const Cycle ref_finish = detail::execute_campaign_run(
            ref, ref_campaign, scua, contenders, options, run);

        EXPECT_EQ(hot_finish, ref_finish) << "run " << run;
        for (CoreId c = 0; c < config.num_cores; ++c) {
            const CoreStats& hs = hot.core(c).stats();
            const CoreStats& rs = ref.core(c).stats();
            const std::string what =
                "run " + std::to_string(run) + " core " + std::to_string(c);
            EXPECT_EQ(hs.instructions, rs.instructions) << what;
            EXPECT_EQ(hs.loads, rs.loads) << what;
            EXPECT_EQ(hs.stores, rs.stores) << what;
            EXPECT_EQ(hs.nops, rs.nops) << what;
            EXPECT_EQ(hs.load_miss_requests, rs.load_miss_requests) << what;
            EXPECT_EQ(hs.ifetch_requests, rs.ifetch_requests) << what;
            EXPECT_EQ(hs.store_drains, rs.store_drains) << what;
            EXPECT_EQ(hs.store_full_stall_cycles, rs.store_full_stall_cycles)
                << what;
            EXPECT_EQ(hs.load_gate_stall_cycles, rs.load_gate_stall_cycles)
                << what;
            expect_same_histogram(hs.load_injection_delta,
                                  rs.load_injection_delta, what);
        }
    }
}

TEST(HotPathDifferential, CampaignHwmsMatchAtEveryJobCount) {
    // End to end through the engine: the campaign's exec-time vector and
    // HWM/LWM are identical to a loop of naive-reference runs, at jobs 1
    // and 4 (worker count must never leak into the numbers).
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua = make_autobench(Autobench::kCacheb, 0x0100'0000,
                                        15, 9);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = 8;
    options.seed = 5;

    std::vector<Cycle> reference;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        reference.push_back(
            reference_measure(config, scua, contenders, options, run)
                .exec_time);
    }

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        engine::EngineOptions engine;
        engine.jobs = jobs;
        const HwmCampaignResult result = engine::run_hwm_campaign_parallel(
            config, scua, contenders, options, engine);
        EXPECT_EQ(result.exec_times, reference) << "jobs " << jobs;
    }
}

TEST(MachineReset, RunAfterResetEqualsFreshMachineRun) {
    // State-leak probe: run program A, reset, run program B — every
    // observable of the B run must equal a fresh machine's B run.
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program a = make_autobench(Autobench::kCacheb, 0x0100'0000, 10, 9);
    const Program b = make_autobench(Autobench::kTblook, 0x0200'0000, 10, 3);

    Machine reused(config);
    reused.load_program(0, a);
    reused.warm_static_footprint(0);
    ASSERT_NE(reused.run_core(0), kNoCycle);

    reused.reset();
    reused.load_program(0, b);
    reused.warm_static_footprint(0);
    const Cycle reused_finish = reused.run_core(0);

    Machine fresh(config);
    fresh.load_program(0, b);
    fresh.warm_static_footprint(0);
    const Cycle fresh_finish = fresh.run_core(0);

    EXPECT_EQ(reused_finish, fresh_finish);
    const Measurement mr = detail::snapshot_measurement(reused, 0,
                                                        reused_finish, false);
    const Measurement mf = detail::snapshot_measurement(fresh, 0,
                                                        fresh_finish, false);
    expect_same_measurement(mr, mf, "post-reset run B");
    // Cache statistics too: a leaked line would show up as a hit delta.
    EXPECT_EQ(reused.l2().stats(0).read_hits, fresh.l2().stats(0).read_hits);
    EXPECT_EQ(reused.l2().stats(0).read_misses,
              fresh.l2().stats(0).read_misses);
    EXPECT_EQ(reused.core(0).il1().stats().read_hits,
              fresh.core(0).il1().stats().read_hits);
    EXPECT_EQ(reused.core(0).dl1().stats().read_misses,
              fresh.core(0).dl1().stats().read_misses);
    EXPECT_EQ(reused.dram().stats().reads, fresh.dram().stats().reads);
}

TEST(MachineReset, ResetForgetsPrograms) {
    Machine machine(MachineConfig::ngmp_ref());
    machine.load_program(0, ProgramBuilder("n").nop(4).iterations(2).build());
    ASSERT_NE(machine.run_core(0), kNoCycle);
    machine.reset();
    EXPECT_EQ(machine.now(), 0u);
    EXPECT_THROW(machine.run_core(0), std::invalid_argument);
    EXPECT_THROW(machine.restart_program(0), std::invalid_argument);
}

TEST(MachineLease, ReusesOneMachinePerConfigFingerprint) {
    engine::MachineLease::drop_thread_cache();
    const MachineConfig ref = MachineConfig::ngmp_ref();
    Machine* first = nullptr;
    {
        engine::MachineLease lease(ref);
        first = &lease.machine();
        lease.campaign() = 42;
    }
    {
        engine::MachineLease lease(ref);
        EXPECT_EQ(&lease.machine(), first);  // same cached machine
        EXPECT_EQ(lease.campaign(), 42u);    // campaign tag survives
    }
    EXPECT_EQ(engine::MachineLease::cached_machines(), 1u);
    {
        engine::MachineLease lease(MachineConfig::ngmp_var());
        EXPECT_NE(&lease.machine(), first);
    }
    EXPECT_EQ(engine::MachineLease::cached_machines(), 2u);
    engine::MachineLease::drop_thread_cache();
    EXPECT_EQ(engine::MachineLease::cached_machines(), 0u);
}

TEST(MachineLease, EvictsLeastRecentlyUsedBeyondCap) {
    engine::MachineLease::drop_thread_cache();
    const std::vector<MachineConfig> configs = {
        MachineConfig::ngmp_ref(), MachineConfig::ngmp_var(),
        MachineConfig::textbook(), MachineConfig::scaled(2, 5),
        MachineConfig::scaled(3, 9), MachineConfig::p4080_like()};
    for (const MachineConfig& config : configs) {
        engine::MachineLease lease(config);
        (void)lease.machine();
    }
    EXPECT_LE(engine::MachineLease::cached_machines(), 4u);
    engine::MachineLease::drop_thread_cache();
}

TEST(MachineRun, RunCoreAgreesWithRunUntilCore) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua = make_autobench(Autobench::kCacheb, 0x0100'0000,
                                        10, 9);
    Machine a(config);
    a.load_program(0, scua);
    a.warm_static_footprint(0);
    const RunResult r = a.run_until_core(0);
    ASSERT_FALSE(r.deadline_reached);

    Machine b(config);
    b.load_program(0, scua);
    b.warm_static_footprint(0);
    EXPECT_EQ(b.run_core(0), r.finish_cycle[0]);
}

TEST(MachineRun, DeadlineStillReportedWithSkipping) {
    Machine machine(MachineConfig::ngmp_ref());
    machine.load_program(
        0, ProgramBuilder("long").nop(4).iterations(1'000'000).build());
    EXPECT_EQ(machine.run_core(0, 100), kNoCycle);
    EXPECT_EQ(machine.now(), 100u);  // skipping never overshoots the cap
}

}  // namespace
}  // namespace rrb
