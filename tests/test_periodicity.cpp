#include "stats/periodicity.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace rrb {
namespace {

/// A descending saw-tooth like dbus(k): value = period - (k mod period),
/// which is the paper's Figure 4 shape (scaled).
std::vector<double> sawtooth(std::size_t period, std::size_t n,
                             double scale = 1.0, double phase = 0.0) {
    std::vector<double> xs;
    for (std::size_t k = 0; k < n; ++k) {
        const auto in_period =
            static_cast<double>((k + static_cast<std::size_t>(phase)) % period);
        xs.push_back(scale * (static_cast<double>(period) - in_period));
    }
    return xs;
}

TEST(ExactPeriod, FindsSawtoothPeriod) {
    const auto xs = sawtooth(27, 70);
    const PeriodEstimate e = exact_period(xs);
    ASSERT_TRUE(e.found());
    EXPECT_EQ(e.period, 27u);
    EXPECT_DOUBLE_EQ(e.score, 1.0);
}

TEST(ExactPeriod, RejectsConstantSeries) {
    const std::vector<double> xs(40, 2.0);
    EXPECT_FALSE(exact_period(xs).found());
}

TEST(ExactPeriod, RejectsTooShortSeries) {
    const std::vector<double> xs = {1, 2, 3};
    EXPECT_FALSE(exact_period(xs).found());
}

TEST(ExactPeriod, NoPeriodInRandomSeries) {
    Pcg32 rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) xs.push_back(rng.next_double() * 100.0);
    EXPECT_FALSE(exact_period(xs).found());
}

TEST(ExactPeriod, ToleranceAbsorbsNoise) {
    auto xs = sawtooth(9, 45, 10.0);
    Pcg32 rng(5);
    for (double& x : xs) x += rng.next_double() * 0.2 - 0.1;
    const PeriodEstimate e = exact_period(xs, 0.25);
    ASSERT_TRUE(e.found());
    EXPECT_EQ(e.period, 9u);
}

TEST(PeakSpacing, FindsPeriod) {
    const auto xs = sawtooth(13, 60);
    const PeriodEstimate e = peak_spacing_period(xs);
    ASSERT_TRUE(e.found());
    EXPECT_EQ(e.period, 13u);
}

TEST(PeakSpacing, NeedsTwoPeaks) {
    const std::vector<double> xs = {1, 5, 1};
    EXPECT_FALSE(peak_spacing_period(xs).found());
}

TEST(AutocorrelationPeriod, FindsPeriod) {
    const auto xs = sawtooth(11, 66);
    const PeriodEstimate e = autocorrelation_period(xs);
    ASSERT_TRUE(e.found());
    EXPECT_EQ(e.period, 11u);
    EXPECT_GT(e.score, 0.8);
}

TEST(AutocorrelationPeriod, RejectsWhiteNoise) {
    Pcg32 rng(123);
    std::vector<double> xs;
    for (int i = 0; i < 80; ++i) xs.push_back(rng.next_double());
    const PeriodEstimate e = autocorrelation_period(xs, 2, 0.5);
    EXPECT_FALSE(e.found());
}

TEST(EqualValuePeriod, PaperEquation3OnSawtooth) {
    // Equation 3: ubd = |ki - kj| for ki != kj with equal dbus. In a
    // strictly monotone ramp, the nearest equal values are one period
    // apart.
    const auto xs = sawtooth(27, 70, 1000.0);
    const PeriodEstimate e = equal_value_period(xs, 0.5);
    ASSERT_TRUE(e.found());
    EXPECT_EQ(e.period, 27u);
    EXPECT_DOUBLE_EQ(e.score, 1.0);
}

TEST(EqualValuePeriod, RejectsConstant) {
    const std::vector<double> xs(30, 4.0);
    EXPECT_FALSE(equal_value_period(xs).found());
}

TEST(Consensus, AllDetectorsAgreeOnCleanSawtooth) {
    const auto xs = sawtooth(27, 70, 123456.0);
    const PeriodConsensus c = consensus_period(xs, 1.0);
    ASSERT_TRUE(c.found());
    EXPECT_EQ(c.period, 27u);
    EXPECT_GE(c.votes, 3);
}

TEST(Consensus, NotFoundOnNoise) {
    Pcg32 rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 50; ++i) xs.push_back(rng.next_double() * 1e6);
    const PeriodConsensus c = consensus_period(xs, 0.0);
    // Individual detectors may hallucinate, but the consensus should not
    // report high confidence.
    if (c.found()) {
        EXPECT_LE(c.votes, 1);
    }
}

class SawtoothPeriodSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SawtoothPeriodSweep, ConsensusRecoversEveryPeriod) {
    const std::size_t period = GetParam();
    const auto xs = sawtooth(period, period * 3 + 5);
    const PeriodConsensus c = consensus_period(xs, 0.0);
    ASSERT_TRUE(c.found()) << "period " << period;
    EXPECT_EQ(c.period, period);
}

INSTANTIATE_TEST_SUITE_P(Periods, SawtoothPeriodSweep,
                         ::testing::Values(2, 3, 5, 6, 9, 13, 27, 39, 54));

}  // namespace
}  // namespace rrb
