#include "stats/series.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

TEST(Summarize, EmptyIsZero) {
    const SeriesSummary s = summarize({});
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, Basics) {
    const std::vector<double> xs = {2.0, 4.0, 6.0, 8.0};
    const SeriesSummary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.2360679, 1e-6);
}

TEST(LocalMaxima, InteriorPeak) {
    const std::vector<double> xs = {0, 1, 3, 1, 0};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 2u);
}

TEST(LocalMaxima, EndpointsCount) {
    // Saw-tooth starting at its maximum, as in Figure 7(a) for ref (peak
    // at k=0).
    const std::vector<double> xs = {5, 4, 3, 2, 1, 5, 4, 3, 2, 1};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0], 0u);
    EXPECT_EQ(peaks[1], 5u);
}

TEST(LocalMaxima, PlateauReportsFirstIndex) {
    const std::vector<double> xs = {0, 2, 2, 2, 0};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 1u);
}

TEST(LocalMaxima, SingleElement) {
    const std::vector<double> xs = {1.0};
    EXPECT_EQ(local_maxima(xs).size(), 1u);
}

TEST(LocalMaxima, MonotonicDecreasingOnlyStart) {
    const std::vector<double> xs = {5, 4, 3, 2};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 0u);
}

TEST(Diff, FirstDifferences) {
    const std::vector<double> xs = {1, 4, 2, 2};
    const auto d = diff(xs);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[0], 3.0);
    EXPECT_DOUBLE_EQ(d[1], -2.0);
    EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Diff, ShortSeriesEmpty) {
    EXPECT_TRUE(diff(std::vector<double>{1.0}).empty());
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) xs.push_back((i % 6 == 0) ? 5.0 : 1.0);
    const auto ac = autocorrelation(xs, 20);
    ASSERT_GE(ac.size(), 12u);
    // lag 6 (index 5) should dominate its neighbours.
    EXPECT_GT(ac[5], ac[3]);
    EXPECT_GT(ac[5], ac[7]);
    EXPECT_GT(ac[5], 0.5);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
    const std::vector<double> xs(20, 3.0);
    const auto ac = autocorrelation(xs, 5);
    for (const double r : ac) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Lerp, Interpolates) {
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

}  // namespace
}  // namespace rrb
