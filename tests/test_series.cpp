#include "stats/series.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace rrb {
namespace {

/// Integer-valued random series: sums of small integers are exact in
/// double arithmetic, so permutation-invariant statistics compare with
/// operator== even across different merge orders.
Series integer_series(std::size_t n, std::uint64_t seed) {
    Pcg32 rng(seed);
    Series s;
    for (std::size_t i = 0; i < n; ++i) {
        s.add(static_cast<double>(rng.next_below(1000)));
    }
    return s;
}

TEST(Series, AddAndValues) {
    Series s;
    EXPECT_TRUE(s.empty());
    s.add(3.0);
    s.add(1.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.values(), (std::vector<double>{3.0, 1.0}));
    const SeriesSummary sum = s.summary();
    EXPECT_DOUBLE_EQ(sum.mean, 2.0);
    EXPECT_DOUBLE_EQ(sum.max, 3.0);
}

TEST(Series, MergeAppendsInOrder) {
    Series a(std::vector<double>{1.0, 2.0});
    const Series b(std::vector<double>{3.0, 4.0});
    a.merge(b);
    EXPECT_EQ(a.values(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
    const Series empty;
    a.merge(empty);  // identity
    EXPECT_EQ(a.size(), 4u);
    Series c;
    c.merge(a);  // merge into empty copies
    EXPECT_EQ(c.values(), a.values());
}

TEST(Series, SelfMergeDuplicatesTheSample) {
    Series s(std::vector<double>{1.0, 2.0});
    s.merge(s);
    EXPECT_EQ(s.values(), (std::vector<double>{1.0, 2.0, 1.0, 2.0}));
}

TEST(SeriesMergeProperties, Associativity) {
    const Series a = integer_series(40, 1);
    const Series b = integer_series(30, 2);
    const Series c = integer_series(50, 3);
    Series left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    Series bc = b;     // a + (b + c)
    bc.merge(c);
    Series right = a;
    right.merge(bc);
    EXPECT_EQ(left.values(), right.values());
}

TEST(SeriesMergeProperties, SummaryIsMergeOrderFree) {
    // Append is order-preserving, not commutative — but every
    // permutation-invariant statistic must agree between a+b and b+a
    // (exactly, on integer-valued samples).
    const Series a = integer_series(64, 4);
    const Series b = integer_series(81, 5);
    Series ab = a;
    ab.merge(b);
    Series ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.size(), ba.size());
    const SeriesSummary sab = ab.summary();
    const SeriesSummary sba = ba.summary();
    EXPECT_EQ(sab.min, sba.min);
    EXPECT_EQ(sab.max, sba.max);
    // Integer sums are exact in double, so the means agree bitwise; the
    // squared deviations are rounded, so their permuted sums agree only
    // to rounding.
    EXPECT_EQ(sab.mean, sba.mean);
    EXPECT_NEAR(sab.stddev, sba.stddev, 1e-9);
}

TEST(Summarize, EmptyIsZero) {
    const SeriesSummary s = summarize({});
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, Basics) {
    const std::vector<double> xs = {2.0, 4.0, 6.0, 8.0};
    const SeriesSummary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.2360679, 1e-6);
}

TEST(LocalMaxima, InteriorPeak) {
    const std::vector<double> xs = {0, 1, 3, 1, 0};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 2u);
}

TEST(LocalMaxima, EndpointsCount) {
    // Saw-tooth starting at its maximum, as in Figure 7(a) for ref (peak
    // at k=0).
    const std::vector<double> xs = {5, 4, 3, 2, 1, 5, 4, 3, 2, 1};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0], 0u);
    EXPECT_EQ(peaks[1], 5u);
}

TEST(LocalMaxima, PlateauReportsFirstIndex) {
    const std::vector<double> xs = {0, 2, 2, 2, 0};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 1u);
}

TEST(LocalMaxima, SingleElement) {
    const std::vector<double> xs = {1.0};
    EXPECT_EQ(local_maxima(xs).size(), 1u);
}

TEST(LocalMaxima, MonotonicDecreasingOnlyStart) {
    const std::vector<double> xs = {5, 4, 3, 2};
    const auto peaks = local_maxima(xs);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0], 0u);
}

TEST(Diff, FirstDifferences) {
    const std::vector<double> xs = {1, 4, 2, 2};
    const auto d = diff(xs);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[0], 3.0);
    EXPECT_DOUBLE_EQ(d[1], -2.0);
    EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Diff, ShortSeriesEmpty) {
    EXPECT_TRUE(diff(std::vector<double>{1.0}).empty());
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) xs.push_back((i % 6 == 0) ? 5.0 : 1.0);
    const auto ac = autocorrelation(xs, 20);
    ASSERT_GE(ac.size(), 12u);
    // lag 6 (index 5) should dominate its neighbours.
    EXPECT_GT(ac[5], ac[3]);
    EXPECT_GT(ac[5], ac[7]);
    EXPECT_GT(ac[5], 0.5);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
    const std::vector<double> xs(20, 3.0);
    const auto ac = autocorrelation(xs, 5);
    for (const double r : ac) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Lerp, Interpolates) {
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

}  // namespace
}  // namespace rrb
