// Tests of the parallel campaign engine: deterministic sharding, ordered
// grid collection, exception propagation and progress accounting.
#include "engine/campaign_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "engine/progress.h"
#include "engine/seed_sequence.h"
#include "engine/thread_pool.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"

namespace rrb {
namespace {

// ------------------------------------------------------------- seeds

TEST(SeedSequence, IsAPureFunctionOfRootAndIndex) {
    const engine::SeedSequence a(42);
    const engine::SeedSequence b(42);
    // Query in different orders: values depend only on the index.
    EXPECT_EQ(a.seed_for(7), b.seed_for(7));
    EXPECT_EQ(a.seed_for(0), b.seed_for(0));
    EXPECT_EQ(a.seed_for(7), a.seed_for(7));
}

TEST(SeedSequence, DistinctIndicesAndRootsGiveDistinctSeeds) {
    std::set<std::uint64_t> seen;
    for (const std::uint64_t root : {0ull, 1ull, 42ull, ~0ull}) {
        const engine::SeedSequence seq(root);
        for (std::uint64_t i = 0; i < 64; ++i) {
            EXPECT_TRUE(seen.insert(seq.seed_for(i)).second)
                << "collision at root " << root << " index " << i;
        }
    }
}

TEST(SeedSequence, DeriveSeedsMatchesSeedFor) {
    const engine::SeedSequence seq(9);
    const std::vector<std::uint64_t> block = engine::derive_seeds(9, 5);
    ASSERT_EQ(block.size(), 5u);
    for (std::size_t i = 0; i < block.size(); ++i) {
        EXPECT_EQ(block[i], seq.seed_for(i));
    }
}

// -------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryJob) {
    engine::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, BoundedQueueDoesNotDeadlock) {
    engine::ThreadPool pool(2, /*max_queued=*/4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {  // far more than the queue bound
        pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, PropagatesTheFirstJobException) {
    engine::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The error is consumed: the pool is reusable afterwards.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, RejectsEmptyJobs) {
    engine::ThreadPool pool(1);
    EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

TEST(ThreadPool, DefaultJobsIsAtLeastOne) {
    EXPECT_GE(engine::ThreadPool::default_jobs(), 1u);
}

TEST(EffectiveJobs, ResolvesZeroAndClampsToWork) {
    EXPECT_EQ(engine::effective_jobs(0, 1000),
              engine::ThreadPool::default_jobs());
    EXPECT_EQ(engine::effective_jobs(8, 3), 3u);
    EXPECT_EQ(engine::effective_jobs(2, 1000), 2u);
    EXPECT_EQ(engine::effective_jobs(8, 0), 1u);
}

// ----------------------------------------------------------- progress

TEST(Progress, CountsMonotonicallyToTotal) {
    engine::ProgressCounter progress;
    progress.begin(10);
    EXPECT_EQ(progress.completed(), 0u);
    EXPECT_FALSE(progress.done());
    std::size_t last = 0;
    for (int i = 0; i < 10; ++i) {
        progress.tick();
        EXPECT_GT(progress.completed(), last);  // strictly monotonic here
        last = progress.completed();
    }
    EXPECT_TRUE(progress.done());
    EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
    EXPECT_EQ(engine::render_progress(progress), "10/10 (100%)");
}

TEST(Progress, ConcurrentTicksNeverExceedTotal) {
    engine::ProgressCounter progress;
    progress.begin(80);
    engine::ThreadPool pool(4);
    for (int i = 0; i < 80; ++i) {
        pool.submit([&progress] { progress.tick(); });
    }
    pool.wait_idle();
    EXPECT_EQ(progress.completed(), 80u);
    EXPECT_TRUE(progress.done());
}

TEST(Progress, EmptyBatchIsDone) {
    engine::ProgressCounter progress;
    progress.begin(0);
    EXPECT_TRUE(progress.done());
    EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
}

// ---------------------------------------------------------------- grid

TEST(RunGrid, EmptyGridReturnsEmpty) {
    const std::vector<int> points;
    const auto results =
        engine::run_grid(points, [](const int x) { return x * 2; });
    EXPECT_TRUE(results.empty());
}

TEST(RunGrid, CollectsResultsInGridOrder) {
    std::vector<int> points;
    for (int i = 0; i < 50; ++i) points.push_back(i);
    engine::EngineOptions eng;
    eng.jobs = 4;
    const auto results = engine::run_grid(
        points,
        [](const int x) {
            // Stagger finish order so out-of-order completion would show.
            if (x % 7 == 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            return x * 3;
        },
        eng);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], static_cast<int>(i) * 3);
    }
}

TEST(RunGrid, PropagatesPointExceptions) {
    std::vector<int> points = {0, 1, 2, 3};
    engine::EngineOptions eng;
    eng.jobs = 2;
    EXPECT_THROW(
        (void)engine::run_grid(
            points,
            [](const int x) {
                if (x == 2) throw std::runtime_error("bad grid point");
                return x;
            },
            eng),
        std::runtime_error);
}

TEST(RunGrid, ReportsProgress) {
    std::vector<int> points = {1, 2, 3, 4, 5};
    engine::ProgressCounter progress;
    engine::EngineOptions eng;
    eng.jobs = 2;
    eng.progress = &progress;
    (void)engine::run_grid(points, [](const int x) { return x; }, eng);
    EXPECT_EQ(progress.total(), 5u);
    EXPECT_EQ(progress.completed(), 5u);
}

// ------------------------------------------------- campaign determinism

HwmCampaignOptions small_campaign() {
    HwmCampaignOptions opt;
    opt.runs = 6;
    opt.seed = 7;
    return opt;
}

TEST(CampaignEngine, ParallelMatchesSerialAtEveryJobCount) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kTblook, 0x0100'0000, 60, 5);
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);

    const HwmCampaignResult serial =
        run_hwm_campaign(cfg, scua, contenders, small_campaign());
    for (const std::size_t jobs : {1u, 2u, 3u, 8u}) {
        engine::EngineOptions eng;
        eng.jobs = jobs;
        const HwmCampaignResult parallel = engine::run_hwm_campaign_parallel(
            cfg, scua, contenders, small_campaign(), eng);
        EXPECT_EQ(parallel.exec_times, serial.exec_times)
            << "jobs = " << jobs;
        EXPECT_EQ(parallel.high_water_mark, serial.high_water_mark);
        EXPECT_EQ(parallel.low_water_mark, serial.low_water_mark);
        EXPECT_EQ(parallel.et_isolation, serial.et_isolation);
        EXPECT_EQ(parallel.nr, serial.nr);
    }
}

TEST(CampaignEngine, RunsAreIndependentOfExecutionOrder) {
    // detail::hwm_campaign_run is a pure function of (inputs, run index):
    // evaluating run 3 before run 0 gives the same numbers.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCanrdr, 0x0100'0000, 40, 2);
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    const HwmCampaignOptions opt = small_campaign();
    const Cycle run3_first =
        detail::hwm_campaign_run(cfg, scua, contenders, opt, 3);
    const Cycle run0 = detail::hwm_campaign_run(cfg, scua, contenders, opt, 0);
    const Cycle run3_again =
        detail::hwm_campaign_run(cfg, scua, contenders, opt, 3);
    EXPECT_EQ(run3_first, run3_again);
    EXPECT_NE(run0, 0u);
}

TEST(CampaignEngine, ValidatesLikeSerial) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams p;
    const Program scua = make_rsk(p);
    HwmCampaignOptions opt;
    opt.runs = 0;
    EXPECT_THROW(
        (void)engine::run_hwm_campaign_parallel(cfg, scua, {scua}, opt),
        std::invalid_argument);
    EXPECT_THROW(
        (void)engine::run_hwm_campaign_parallel(cfg, scua, {}, {}),
        std::invalid_argument);
}

TEST(CampaignEngine, ProgressCoversEveryRun) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCanrdr, 0x0100'0000, 40, 2);
    engine::ProgressCounter progress;
    engine::EngineOptions eng;
    eng.jobs = 2;
    eng.progress = &progress;
    (void)engine::run_hwm_campaign_parallel(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), small_campaign(),
        eng);
    EXPECT_EQ(progress.total(), small_campaign().runs);
    EXPECT_EQ(progress.completed(), small_campaign().runs);
}

// -------------------------------------------------- slowdown edge case

TEST(HwmCampaignResult, SlowdownClampsWhenHwmBelowIsolation) {
    HwmCampaignResult r;
    r.et_isolation = 1000;
    r.high_water_mark = 900;  // below isolation: must not wrap negative
    r.nr = 10;
    EXPECT_DOUBLE_EQ(r.hwm_slowdown_per_request(), 0.0);
    r.high_water_mark = 1000;  // equal: zero slowdown
    EXPECT_DOUBLE_EQ(r.hwm_slowdown_per_request(), 0.0);
    r.high_water_mark = 1270;
    EXPECT_DOUBLE_EQ(r.hwm_slowdown_per_request(), 27.0);
}

// -------------------------------------------------------- grid rewires

TEST(SlowdownGrid, MatchesSerialRunSlowdown) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const std::vector<Program> scuas = {
        make_autobench(Autobench::kCanrdr, 0x0100'0000, 30, 2),
        make_autobench(Autobench::kTblook, 0x0200'0000, 30, 3),
    };
    const std::vector<Program> contenders =
        make_rsk_contenders(cfg, OpKind::kLoad);
    const std::vector<SlowdownResult> grid =
        run_slowdown_grid(cfg, scuas, contenders, /*jobs=*/2);
    ASSERT_EQ(grid.size(), scuas.size());
    for (std::size_t i = 0; i < scuas.size(); ++i) {
        const SlowdownResult serial =
            run_slowdown(cfg, scuas[i], contenders);
        EXPECT_EQ(grid[i].isolation.exec_time, serial.isolation.exec_time);
        EXPECT_EQ(grid[i].contention.exec_time, serial.contention.exec_time);
        EXPECT_EQ(grid[i].isolation.bus_requests,
                  serial.isolation.bus_requests);
    }
}

}  // namespace
}  // namespace rrb
