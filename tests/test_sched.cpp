// The campaign scheduler's contract: a batch of N campaigns drained as
// one flat (campaign × shard) queue is bit-identical, campaign by
// campaign, to N standalone sequential runs — at every jobs value —
// and the sweep rewired onto it matches the standalone path per grid
// point. Plus the dispatch accounting (hits + steals == dispatches ==
// items enqueued) and the batch spec front end.
#include <bit>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/session.h"
#include "kernels/autobench.h"
#include "machine/config.h"
#include "obs/telemetry.h"
#include "sched/batch_spec.h"
#include "sched/campaign_scheduler.h"
#include "stats/checkpoint.h"

namespace rrb {
namespace {

Scenario small_scenario(const MachineConfig& config, std::size_t runs,
                        std::uint64_t seed) {
    return Scenario::on(config)
        .scua(make_autobench(Autobench::kCacheb, 0x0100'0000,
                             /*iterations=*/2, 9))
        .rsk_contenders(OpKind::kLoad)
        .runs(runs)
        .seed(seed);
}

/// Three deliberately heterogeneous campaigns: different platforms
/// (two sharing a fingerprint so lease affinity has something to hit),
/// run counts, seeds and block sizes.
std::vector<BatchItem> heterogeneous_batch() {
    PwcetSpec small;
    small.block_size = 5;
    PwcetSpec tiny;
    tiny.block_size = 3;
    std::vector<BatchItem> items;
    items.push_back({"ref-a",
                     small_scenario(MachineConfig::ngmp_ref(), 60, 7),
                     small});
    items.push_back({"scaled",
                     small_scenario(MachineConfig::scaled(2, 5), 45, 11),
                     tiny});
    items.push_back({"ref-b",
                     small_scenario(MachineConfig::ngmp_ref(), 30, 13),
                     small});
    return items;
}

/// Bit-pattern equality: "bit-identical" is the contract, and it must
/// hold for NaN quantiles of a degenerate fit too (EXPECT_EQ on the
/// double value would reject NaN == NaN).
void expect_same_bits(double a, double b) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b));
}

void expect_same_result(const PwcetCampaignResult& a,
                        const PwcetCampaignResult& b) {
    EXPECT_EQ(a.et_isolation, b.et_isolation);
    EXPECT_EQ(a.nr, b.nr);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.high_water_mark, b.high_water_mark);
    EXPECT_EQ(a.low_water_mark, b.low_water_mark);
    expect_same_bits(a.mean, b.mean);
    expect_same_bits(a.stddev, b.stddev);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.live_values, b.live_values);
    expect_same_bits(a.fit.mu, b.fit.mu);
    expect_same_bits(a.fit.beta, b.fit.beta);
    ASSERT_EQ(a.quantiles.size(), b.quantiles.size());
    for (std::size_t q = 0; q < a.quantiles.size(); ++q) {
        EXPECT_EQ(a.quantiles[q].exceedance, b.quantiles[q].exceedance);
        expect_same_bits(a.quantiles[q].pwcet, b.quantiles[q].pwcet);
    }
}

TEST(CampaignScheduler, BatchMatchesStandaloneAcrossJobs) {
    const std::vector<BatchItem> items = heterogeneous_batch();

    std::vector<PwcetCampaignResult> reference;
    for (const BatchItem& item : items) {
        Session session;
        session.jobs(1);
        reference.push_back(session.pwcet(item.scenario, item.spec));
    }

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        Session session;
        session.jobs(jobs);
        const BatchResult batch = session.batch(items);
        ASSERT_EQ(batch.points.size(), items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            SCOPED_TRACE(items[i].name + " at jobs " +
                         std::to_string(jobs));
            EXPECT_EQ(batch.points[i].name, items[i].name);
            expect_same_result(batch.points[i].result, reference[i]);
        }
    }
}

TEST(CampaignScheduler, BatchCheckpointRoundTripsThroughMerge) {
    const std::vector<BatchItem> items = heterogeneous_batch();
    Session session;
    session.jobs(4);
    const BatchResult batch = session.batch(items);

    for (std::size_t i = 0; i < items.size(); ++i) {
        SCOPED_TRACE(items[i].name);
        const BatchPointResult& point = batch.points[i];
        // The batch checkpoint claims to be the whole campaign as
        // slice 0 of 1 — merge must accept it on its own and reproduce
        // the batch's (== the standalone) result bit for bit.
        EXPECT_EQ(point.checkpoint.meta.slice_index, 0u);
        EXPECT_EQ(point.checkpoint.meta.slice_count, 1u);
        EXPECT_EQ(point.checkpoint.meta.scenario_fingerprint,
                  items[i].scenario.fingerprint());
        const std::string path =
            testing::TempDir() + "sched_batch_" + point.name + ".ckpt";
        save_pwcet_checkpoint(path, point.checkpoint);
        const MergedPwcetCampaign merged = session.merge({path});
        expect_same_result(merged.result, point.result);
        std::remove(path.c_str());
    }
}

TEST(CampaignScheduler, SweepMatchesStandalonePerPointAcrossJobs) {
    const Scenario base =
        small_scenario(MachineConfig::ngmp_ref(), 24, 3);
    SweepAxes axes;
    axes.cores = {1, 2};
    axes.lbus = {5, 9};
    PwcetSpec spec;
    spec.block_size = 4;

    Session sequential;
    sequential.jobs(1);
    const SweepResult reference = sequential.sweep(base, axes, spec);
    ASSERT_EQ(reference.points.size(), axes.points());

    Session parallel;
    parallel.jobs(4);
    const SweepResult wide = parallel.sweep(base, axes, spec);
    ASSERT_EQ(wide.points.size(), reference.points.size());
    for (std::size_t p = 0; p < wide.points.size(); ++p) {
        SCOPED_TRACE("point " + std::to_string(p));
        EXPECT_EQ(wide.points[p].cores, reference.points[p].cores);
        EXPECT_EQ(wide.points[p].lbus, reference.points[p].lbus);
        expect_same_result(wide.points[p].result,
                           reference.points[p].result);

        // Each grid point also matches a standalone campaign on the
        // point's config — the scheduler may not leak one campaign's
        // state into another however items interleave.
        Session standalone;
        standalone.jobs(1);
        const PwcetCampaignResult lone = standalone.pwcet(
            base.with_config(wide.points[p].config), spec);
        expect_same_result(wide.points[p].result, lone);
    }
}

TEST(CampaignScheduler, DispatchAccountingAddsUp) {
    const std::vector<BatchItem> items = heterogeneous_batch();
    std::size_t expected_items = 0;
    for (const BatchItem& item : items) {
        expected_items +=
            engine::ReducePlan::for_count(
                item.scenario.run_protocol().runs).shards() + 1;
    }

    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::instance();
    registry.reset();
    registry.enable();
    Session session;
    session.jobs(4);
    (void)session.batch(items);
    const obs::CounterSnapshot counters = registry.counters();
    registry.disable();

    EXPECT_EQ(counters[obs::kSchedItemsEnqueued], expected_items);
    EXPECT_EQ(counters[obs::kSchedDispatches], expected_items);
    // Every dispatch is exactly one of: affinity hit (worker already
    // held the fingerprint) or steal (anything else, first pulls
    // included).
    EXPECT_EQ(counters[obs::kSchedAffinityHits] +
                  counters[obs::kSchedSteals],
              counters[obs::kSchedDispatches]);
    EXPECT_GE(counters[obs::kSchedSteals], 1u);
}

TEST(CampaignScheduler, BatchProgressTicksAggregateAndPerCampaign) {
    const std::vector<BatchItem> items = heterogeneous_batch();
    sched::BatchProgress monitor;
    std::vector<std::pair<std::string, std::size_t>> announce;
    for (const BatchItem& item : items) {
        announce.emplace_back(item.name,
                              item.scenario.run_protocol().runs);
    }
    monitor.announce(announce);
    ASSERT_EQ(monitor.campaigns(), items.size());
    EXPECT_EQ(monitor.aggregate().total(), 60u + 45u + 30u);

    Session session;
    session.jobs(4);
    (void)session.batch(items, &monitor);
    EXPECT_EQ(monitor.aggregate().completed(),
              monitor.aggregate().total());
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(monitor.campaign(i).completed(),
                  items[i].scenario.run_protocol().runs);
    }

    const std::vector<obs::CampaignSample> samples = monitor.samples();
    ASSERT_EQ(samples.size(), items.size());
    EXPECT_EQ(*samples[0].name, "ref-a");
}

TEST(CampaignScheduler, MismatchedMonitorIsRejected) {
    const std::vector<BatchItem> items = heterogeneous_batch();
    sched::BatchProgress monitor;  // never announced
    Session session;
    session.jobs(1);
    EXPECT_THROW((void)session.batch(items, &monitor),
                 std::invalid_argument);
}

TEST(CampaignScheduler, RunsExactlyOnce) {
    engine::ThreadPool pool(2);
    sched::CampaignScheduler scheduler(pool);
    const Scenario scenario =
        small_scenario(MachineConfig::ngmp_ref(), 4, 1);
    sched::PwcetCampaignWork work;
    work.config = scenario.config();
    work.scua = scenario.scua_program();
    work.contenders = scenario.contender_programs();
    work.options.protocol = scenario.run_protocol();
    ASSERT_EQ(scheduler.add(std::move(work)), 0u);
    EXPECT_EQ(scheduler.work_items(),
              engine::ReducePlan::for_count(4).shards() + 1);
    scheduler.run();
    EXPECT_THROW(scheduler.run(), std::invalid_argument);
    (void)scheduler.take(0);
    EXPECT_THROW((void)scheduler.take(0), std::invalid_argument);
}

TEST(BatchSpec, ParsesAndMaterializesLikeTheCli) {
    const std::string text =
        "# comment\n"
        "[scenario small-rr]\n"
        "runs = 600\n"
        "seed = 7\n"
        "block-size = 30\n"
        "\n"
        "[scenario wide-bus]\n"
        "cores = 2\n"
        "lbus = 5\n"
        "runs = 400\n"
        "seed = 9\n"
        "exceedance = 1e-3,1e-6\n";
    const std::vector<BatchItem> items = sched::parse_batch_spec(text);
    ASSERT_EQ(items.size(), 2u);

    EXPECT_EQ(items[0].name, "small-rr");
    EXPECT_EQ(items[0].scenario.run_protocol().runs, 600u);
    EXPECT_EQ(items[0].scenario.run_protocol().seed, 7u);
    EXPECT_EQ(items[0].spec.block_size, 30u);
    // Materialization mirrors `pwcet` flag handling key for key — the
    // fingerprints must match what the CLI would build, or batch
    // checkpoints stop merging against standalone runs.
    const Scenario cli_equivalent =
        Scenario::on(MachineConfig::ngmp_ref())
            .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 40, 9))
            .rsk_contenders(OpKind::kLoad)
            .runs(600)
            .seed(7);
    EXPECT_EQ(items[0].scenario.fingerprint(),
              cli_equivalent.fingerprint());

    EXPECT_EQ(items[1].name, "wide-bus");
    EXPECT_EQ(items[1].scenario.config().num_cores, 2u);
    EXPECT_EQ(items[1].scenario.config().load_hit_service(), 5u);
    ASSERT_EQ(items[1].spec.exceedance.size(), 2u);
    EXPECT_EQ(items[1].spec.exceedance[0], 1e-3);
    EXPECT_EQ(items[1].spec.exceedance[1], 1e-6);
}

TEST(BatchSpec, DefaultsMatchThePwcetCommand) {
    const std::vector<BatchItem> items =
        sched::parse_batch_spec("[scenario d]\n");
    ASSERT_EQ(items.size(), 1u);
    // pwcet defaults: 40 blocks of the default block size 50, seed 1,
    // NGMP reference platform.
    EXPECT_EQ(items[0].spec.block_size, 50u);
    EXPECT_EQ(items[0].scenario.run_protocol().runs, 40u * 50u);
    EXPECT_EQ(items[0].scenario.run_protocol().seed, 1u);
    EXPECT_EQ(items[0].scenario.config().fingerprint(),
              MachineConfig::ngmp_ref().fingerprint());
}

TEST(BatchSpec, RejectsMalformedInput) {
    EXPECT_THROW((void)sched::parse_batch_spec(""),
                 std::invalid_argument);
    EXPECT_THROW((void)sched::parse_batch_spec("runs = 5\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)sched::parse_batch_spec("[scenario a/b]\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)sched::parse_batch_spec("[scenario a]\nbogus = 1\n"),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sched::parse_batch_spec("[scenario a]\n[scenario a]\n"),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sched::parse_batch_spec("[scenario a]\nexceedance = 2\n"),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sched::parse_batch_spec("[scenario a]\nblock-size = 0\n"),
        std::invalid_argument);
}

}  // namespace
}  // namespace rrb
