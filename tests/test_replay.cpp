// Unit tests for the replay subsystem (src/replay): script decode
// determinism, the interpreter fallback, L2-outcome baking eligibility,
// per-core script sharing, the lease-held script cache lifetime, and a
// direct replay-vs-interpret differential through the campaign run
// protocol. The full configuration-grid bit-identity proof lives in
// tests/test_hotpath.cpp; these tests pin the replay layer's own
// contracts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "engine/machine_lease.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "replay/decode.h"
#include "replay/microop.h"
#include "replay/script_cache.h"

namespace rrb {
namespace {

Program cacheb_program() {
    return make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9);
}

Program store_program() {
    RskParams params;
    params.access = OpKind::kStore;
    params.unroll = 2;
    params.iterations = 10;
    return make_rsk(params);
}

replay::L2PartitionSpec partition_spec(Machine& machine,
                                       const MachineConfig& config,
                                       CoreId core) {
    replay::L2PartitionSpec spec;
    spec.geometry = machine.l2().partition_geometry();
    spec.replacement = config.l2_replacement;
    spec.write_policy = config.l2_write_policy;
    spec.alloc_policy = config.l2_alloc_policy;
    spec.rng_seed = machine.l2().partition_rng_seed(core);
    return spec;
}

void expect_same_op(const replay::MicroOp& a, const replay::MicroOp& b,
                    const std::string& what) {
    EXPECT_EQ(a.kind, b.kind) << what;
    EXPECT_EQ(a.flags, b.flags) << what;
    EXPECT_EQ(a.il1_chain_hits, b.il1_chain_hits) << what;
    EXPECT_EQ(a.nops, b.nops) << what;
    EXPECT_EQ(a.instrs, b.instrs) << what;
    EXPECT_EQ(a.span_ops, b.span_ops) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.line, b.line) << what;
    EXPECT_EQ(a.span_cycles, b.span_cycles) << what;
    EXPECT_EQ(a.span_instrs, b.span_instrs) << what;
    EXPECT_EQ(a.span_nops, b.span_nops) << what;
    EXPECT_EQ(a.span_il1_hits, b.span_il1_hits) << what;
    EXPECT_EQ(a.span_loads, b.span_loads) << what;
}

void expect_same_script(const replay::MicroOpScript& a,
                        const replay::MicroOpScript& b) {
    EXPECT_EQ(a.looping, b.looping);
    EXPECT_EQ(a.l2_baked, b.l2_baked);
    EXPECT_EQ(a.loop_start, b.loop_start);
    EXPECT_EQ(a.tail_start, b.tail_start);
    EXPECT_EQ(a.tail_instrs, b.tail_instrs);
    EXPECT_EQ(a.loop_instrs, b.loop_instrs);
    EXPECT_EQ(a.total_instructions, b.total_instructions);
    EXPECT_EQ(a.program_fingerprint, b.program_fingerprint);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        expect_same_op(a.ops[i], b.ops[i], "op " + std::to_string(i));
    }
}

TEST(ScriptDecode, DeterministicForSameProgramAndConfig) {
    // Same (program, config, core) must produce the same script, op for
    // op — the property that lets equal-fingerprint cores share one
    // script and lets a re-decode never change campaign numbers.
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program program = cacheb_program();
    const auto a = replay::decode_program(program, config.core, 0);
    const auto b = replay::decode_program(program, config.core, 0);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    expect_same_script(*a, *b);
    EXPECT_EQ(a->program_fingerprint, fingerprint(program));
}

TEST(ScriptDecode, StructurallySaneLoopRegions) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    const auto script =
        replay::decode_program(cacheb_program(), config.core, 0);
    ASSERT_NE(script, nullptr);
    EXPECT_GT(script->total_instructions, 0u);
    EXPECT_LE(script->loop_start, script->tail_start);
    EXPECT_LE(script->tail_start, script->ops.size());
    if (script->looping) {
        EXPECT_GT(script->loop_instrs, 0u);
        // The tail is one final (possibly partial) pass of the loop.
        EXPECT_LE(script->tail_instrs, script->loop_instrs);
    } else {
        EXPECT_EQ(script->tail_start, script->ops.size());
    }
}

TEST(ScriptDecode, TightLimitsDeclineInsteadOfTruncating) {
    // A cap too small to cover the program (and find its loop) must
    // return nullptr — the caller falls back to the interpreter; a
    // truncated script would silently change results.
    const MachineConfig config = MachineConfig::ngmp_ref();
    replay::DecodeLimits limits;
    limits.max_ops = 4;
    EXPECT_EQ(replay::decode_program(cacheb_program(), config.core, 0,
                                     nullptr, limits),
              nullptr);
}

TEST(ScriptDecode, BakesL2OnlyForStorelessPrograms) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    Machine machine(config);
    const replay::L2PartitionSpec spec =
        partition_spec(machine, config, 0);

    // Storeless program + partition spec: outcomes baked.
    const auto baked =
        replay::decode_program(cacheb_program(), config.core, 0, &spec);
    ASSERT_NE(baked, nullptr);
    EXPECT_TRUE(baked->l2_baked);

    // A program with stores decodes fine but must not bake: store
    // drains write into the partition in a timing-dependent order.
    const auto with_stores =
        replay::decode_program(store_program(), config.core, 0, &spec);
    ASSERT_NE(with_stores, nullptr);
    EXPECT_FALSE(with_stores->l2_baked);

    // No spec, no baking.
    const auto unbaked =
        replay::decode_program(cacheb_program(), config.core, 0);
    ASSERT_NE(unbaked, nullptr);
    EXPECT_FALSE(unbaked->l2_baked);
}

TEST(ScriptDecode, BakedAndUnbakedScriptsAgreeOnEverythingButL2Flags) {
    // Baking only adds the kL2Hit/kL2Evict bits on miss ops; the op
    // stream itself (kinds, lines, cycles, spans) is identical.
    const MachineConfig config = MachineConfig::ngmp_ref();
    Machine machine(config);
    const replay::L2PartitionSpec spec =
        partition_spec(machine, config, 0);
    const Program program = cacheb_program();
    const auto baked =
        replay::decode_program(program, config.core, 0, &spec);
    const auto plain = replay::decode_program(program, config.core, 0);
    ASSERT_NE(baked, nullptr);
    ASSERT_NE(plain, nullptr);
    ASSERT_EQ(baked->ops.size(), plain->ops.size());
    const std::uint8_t l2_bits =
        replay::MicroOp::kL2Hit | replay::MicroOp::kL2Evict;
    for (std::size_t i = 0; i < baked->ops.size(); ++i) {
        const replay::MicroOp& b = baked->ops[i];
        const replay::MicroOp& p = plain->ops[i];
        EXPECT_EQ(b.kind, p.kind) << i;
        EXPECT_EQ(b.line, p.line) << i;
        EXPECT_EQ(b.cycles, p.cycles) << i;
        const bool miss_kind =
            b.kind == replay::MicroOp::Kind::kLoadMiss ||
            b.kind == replay::MicroOp::Kind::kIfetchMiss;
        const std::uint8_t mask =
            miss_kind ? static_cast<std::uint8_t>(~l2_bits)
                      : static_cast<std::uint8_t>(~0);
        EXPECT_EQ(b.flags & mask, p.flags & mask) << i;
    }
}

TEST(PrepareScripts, SharesOneScriptAcrossEqualPrograms) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    Machine machine(config);
    machine.load_program(0, cacheb_program());
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    for (CoreId c = 1; c < config.num_cores; ++c) {
        machine.load_program(c, contenders[(c - 1) % contenders.size()]);
    }
    replay::ScriptCache cache;
    replay::prepare_scripts(cache, machine, /*campaign=*/1);
    EXPECT_EQ(cache.campaign, 1u);
    ASSERT_EQ(cache.per_core.size(), config.num_cores);
    ASSERT_NE(cache.per_core[0], nullptr);
    ASSERT_NE(cache.per_core[1], nullptr);
    // Contender cores run the same program: one shared script.
    EXPECT_EQ(cache.per_core[1], cache.per_core[2]);
    EXPECT_EQ(cache.per_core[2], cache.per_core[3]);
    EXPECT_NE(cache.per_core[0], cache.per_core[1]);
    EXPECT_EQ(cache.owned.size(), 2u);  // scua + shared contender
}

TEST(PrepareScripts, RandomReplacementMakesScriptsCoreSpecific) {
    // Under kRandom L1 replacement the victim RNG is seeded per core,
    // so equal programs still decode to core-specific outcome streams.
    MachineConfig config = MachineConfig::ngmp_ref();
    config.core.l1_replacement = ReplacementPolicy::kRandom;
    Machine machine(config);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    for (CoreId c = 1; c < config.num_cores; ++c) {
        machine.load_program(c, contenders[(c - 1) % contenders.size()]);
    }
    replay::ScriptCache cache;
    replay::prepare_scripts(cache, machine, /*campaign=*/1);
    EXPECT_NE(cache.per_core[1], cache.per_core[2]);
    EXPECT_NE(cache.per_core[2], cache.per_core[3]);
}

TEST(LeaseScripts, SurviveReacquisitionAndDieWithTheMachine) {
    engine::MachineLease::drop_thread_cache();
    const MachineConfig config = MachineConfig::ngmp_ref();
    const replay::MicroOpScript* scua_script = nullptr;
    {
        engine::MachineLease lease(config);
        Machine& machine = lease.machine();
        machine.load_program(0, cacheb_program());
        replay::prepare_scripts(lease.scripts(), machine, /*campaign=*/7);
        scua_script = lease.scripts().per_core[0];
        ASSERT_NE(scua_script, nullptr);
    }
    {
        // Same fingerprint -> same cached machine -> the decoded
        // scripts are still there; no re-decode needed.
        engine::MachineLease lease(config);
        EXPECT_EQ(lease.scripts().campaign, 7u);
        ASSERT_EQ(lease.scripts().per_core.size(),
                  std::size_t{config.num_cores});
        EXPECT_EQ(lease.scripts().per_core[0], scua_script);
    }
    // Evicting the machine destroys its scripts with it; a fresh lease
    // starts with an empty cache.
    engine::MachineLease::drop_thread_cache();
    {
        engine::MachineLease lease(config);
        EXPECT_EQ(lease.scripts().campaign, 0u);
        EXPECT_TRUE(lease.scripts().owned.empty());
    }
    engine::MachineLease::drop_thread_cache();
}

TEST(Replay, CampaignRunsMatchInterpreterBitForBit) {
    // The same campaign run through the shared protocol body, once
    // interpreting and once replaying (scripts non-null): finish cycle
    // and the whole Measurement must match, including the L2 partition
    // statistics the baked path injects instead of looking up.
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua = cacheb_program();
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = 4;
    options.seed = 3;
    options.max_start_delay = 499;

    Machine interp(config);
    Machine replayed(config);
    std::uint64_t interp_campaign = 0;
    std::uint64_t replay_campaign = 0;
    replay::ScriptCache scripts;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        const Cycle fi = detail::execute_campaign_run(
            interp, interp_campaign, scua, contenders, options, run);
        const Cycle fr = detail::execute_campaign_run(
            replayed, replay_campaign, scua, contenders, options, run,
            &scripts);
        ASSERT_NE(fi, kNoCycle);
        EXPECT_EQ(fi, fr) << "run " << run;
        for (CoreId c = 0; c < config.num_cores; ++c) {
            const std::string what =
                "run " + std::to_string(run) + " core " + std::to_string(c);
            EXPECT_EQ(interp.core(c).stats().instructions,
                      replayed.core(c).stats().instructions)
                << what;
            EXPECT_EQ(interp.l2().stats(c).read_hits,
                      replayed.l2().stats(c).read_hits)
                << what;
            EXPECT_EQ(interp.l2().stats(c).read_misses,
                      replayed.l2().stats(c).read_misses)
                << what;
            EXPECT_EQ(interp.l2().stats(c).evictions,
                      replayed.l2().stats(c).evictions)
                << what;
        }
    }
}

}  // namespace
}  // namespace rrb
