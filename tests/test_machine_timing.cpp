// Exact cycle-level timing tests of the machine's memory paths: L2-hit
// loads, split-transaction L2 misses through the DRAM, store drains and
// trace replay — the numbers every figure stands on.
#include <gtest/gtest.h>

#include "isa/program.h"
#include "kernels/rsk.h"
#include "machine/machine.h"

namespace rrb {
namespace {

TEST(MachineTiming, SingleL2HitLoadLatency) {
    // One isolated load that misses DL1 and hits a warmed L2:
    // dl1_latency (1) + lbus (9) = data at cycle 10; with loop control 0
    // and a single-instruction body, finish = 10.
    Machine m(MachineConfig::ngmp_ref());
    Program p = ProgramBuilder("ld")
                    .load(AddrPattern::fixed(0x2000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    m.load_program(0, p);
    m.warm_static_footprint(0);  // code + L2 line
    const RunResult r = m.run(1000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_EQ(r.finish_cycle[0], 10u);
}

TEST(MachineTiming, VarArchitectureAddsDl1Latency) {
    Machine m(MachineConfig::ngmp_var());
    Program p = ProgramBuilder("ld")
                    .load(AddrPattern::fixed(0x2000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    m.load_program(0, p);
    m.warm_static_footprint(0);
    const RunResult r = m.run(1000);
    EXPECT_EQ(r.finish_cycle[0], 13u);  // dl1 4 + lbus 9
}

TEST(MachineTiming, L2MissSplitTransactionLatency) {
    // Cold L2: miss request (3) + DRAM (overhead 2 + tRCD 3 + tCL 3 +
    // burst 2 = 10) + fill response (3) + dl1 lookup (1) = 17.
    Machine m(MachineConfig::ngmp_ref());
    Program p = ProgramBuilder("ld")
                    .load(AddrPattern::fixed(0x2000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    m.load_program(0, p);
    m.core(0).il1().warm(0);  // warm code only; L2 stays cold
    const RunResult r = m.run(1000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_EQ(r.finish_cycle[0], 17u);
    EXPECT_EQ(m.dram().stats().reads, 1u);
    // Two bus transactions: the address phase and the fill.
    EXPECT_EQ(m.bus().counters(0).requests, 2u);
}

TEST(MachineTiming, SecondAccessToFilledLineHitsL2) {
    Machine m(MachineConfig::ngmp_ref());
    Program p = ProgramBuilder("ld2")
                    .load(AddrPattern::fixed(0x2000))
                    .load(AddrPattern::fixed(0x2000 + 4096))
                    .iterations(2)
                    .loop_control(0)
                    .build();
    m.load_program(0, p);
    m.core(0).il1().warm(0);
    const RunResult r = m.run(10000);
    ASSERT_FALSE(r.deadline_reached);
    // Iteration 2 hits the L2 fills of iteration 1 (DL1 has 4 ways, the
    // two lines map to different sets so they both stay resident... they
    // hit DL1 on iteration 2, no bus traffic at all).
    EXPECT_EQ(m.bus().counters(0).requests, 4u);  // 2 misses x 2 txns
}

TEST(MachineTiming, StoreDrainOccupiesConfiguredCycles) {
    Machine m(MachineConfig::ngmp_ref());
    Program p = ProgramBuilder("st")
                    .store(AddrPattern::fixed(0x3000))
                    .iterations(1)
                    .loop_control(0)
                    .build();
    m.load_program(0, p);
    m.warm_static_footprint(0);
    const RunResult r = m.run(1000);
    ASSERT_FALSE(r.deadline_reached);
    // Store retires at 1; drain posted at tick 1, granted at 1, busy 9
    // cycles -> completes at 10; finish when buffer empty = 10.
    EXPECT_EQ(r.finish_cycle[0], 10u);
    EXPECT_EQ(m.bus().counters(0).busy_cycles, 9u);
}

TEST(MachineTiming, WeightedRrDoubleGrantVisibleInWindow) {
    // Weighted RR {2,1,1,1}: core 0 gets two consecutive transactions per
    // rotation; under saturation its window is 3*lbus and the others' is
    // 4*lbus... observable via grant counts over a fixed horizon.
    MachineConfig cfg = MachineConfig::ngmp_ref();
    cfg.arbiter = ArbiterKind::kWeightedRoundRobin;
    cfg.wrr_weights = {2, 1, 1, 1};
    Machine m(cfg);
    for (CoreId c = 0; c < 4; ++c) {
        RskParams p;
        p.access = OpKind::kStore;  // delta = 0 keeps all queues full
        p.iterations = 100000;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        m.load_program(c, make_rsk(p));
        m.warm_static_footprint(c);
    }
    m.run(5000);
    const double c0 = static_cast<double>(m.bus().counters(0).requests);
    const double c1 = static_cast<double>(m.bus().counters(1).requests);
    EXPECT_NEAR(c0 / c1, 2.0, 0.2);  // weight-2 core gets ~2x bandwidth
}

TEST(MachineTiming, TraceProgramReplaysAddresses) {
    const std::vector<TraceOp> trace = {
        {OpKind::kLoad, 0x2000, 1},
        {OpKind::kAlu, 0, 3},
        {OpKind::kStore, 0x3000, 1},
        {OpKind::kLoad, 0x2000 + 4096, 1},
    };
    const Program p = make_trace_program(trace, 5, 0x8000, "captured");
    EXPECT_EQ(p.name, "captured");
    EXPECT_EQ(p.body.size(), 4u);
    EXPECT_EQ(p.iterations, 5u);
    EXPECT_EQ(p.body[0].addr.address(3), 0x2000u);  // fixed across iters

    Machine m(MachineConfig::ngmp_ref());
    m.load_program(0, p);
    m.warm_static_footprint(0);
    const RunResult r = m.run(100000);
    ASSERT_FALSE(r.deadline_reached);
    EXPECT_EQ(m.core(0).stats().loads, 10u);
    EXPECT_EQ(m.core(0).stats().stores, 5u);
}

TEST(MachineTiming, TraceProgramValidation) {
    EXPECT_THROW((void)make_trace_program({}), std::invalid_argument);
}

TEST(MachineTiming, DramRefreshStretchesMissLatency) {
    MachineConfig cfg = MachineConfig::ngmp_ref();
    cfg.dram.refresh_interval = 64;
    cfg.dram.refresh_duration = 26;
    Machine m(cfg);
    // A long L2-miss stream: refreshes must inject visible stalls versus
    // the refresh-free machine.
    Program p = ProgramBuilder("walk")
                    .load(AddrPattern::stride(0, 32, 256 * 1024))
                    .iterations(512)
                    .build();
    m.load_program(0, p);
    const RunResult with_refresh = m.run(10'000'000);

    Machine m2(MachineConfig::ngmp_ref());
    m2.load_program(0, p);
    const RunResult without = m2.run(10'000'000);
    ASSERT_FALSE(with_refresh.deadline_reached);
    ASSERT_FALSE(without.deadline_reached);
    EXPECT_GT(with_refresh.finish_cycle[0], without.finish_cycle[0]);
}

}  // namespace
}  // namespace rrb
