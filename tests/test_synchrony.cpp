// Validation of the synchrony effect (Section 3): the simulated per-request
// contention delays under saturation must match Equation 2 exactly, for
// the didactic lbus=2 setup of Figure 3 and for the NGMP setups.
#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/experiment.h"
#include "kernels/rsk.h"
#include "machine/machine.h"

namespace rrb {
namespace {

/// Runs rsk-nop(k) on core 0 against Nc-1 rsk and returns the dominant
/// (mode) per-request contention delay of core 0's requests.
std::uint64_t dominant_gamma(const MachineConfig& cfg, std::uint32_t k,
                             std::uint64_t iterations = 60,
                             OpKind contender_access = OpKind::kLoad) {
    RskParams scua_params;
    scua_params.dl1_geometry = cfg.core.dl1_geometry;
    scua_params.iterations = iterations;
    const Program scua = make_rsk_nop(scua_params, k);

    RskParams contender_params = scua_params;
    contender_params.access = contender_access;
    contender_params.data_base = 0x0800'0000;
    contender_params.code_base = 0x0004'0000;
    const Program contender = make_rsk(contender_params);

    const Measurement m =
        run_contention(cfg, scua, {contender}, 0, 100'000'000);
    EXPECT_FALSE(m.deadline_reached);
    EXPECT_FALSE(m.gamma.empty());
    return m.gamma.mode();
}

TEST(Synchrony, Figure3GammaMatrixForTextbookSetup) {
    // Figure 3: 4 cores, lbus = 2, ubd = 6. Injection time delta = k + 1
    // (dl1_latency = 1), so gamma(mode) must equal Eq. 2 at delta = k+1.
    const MachineConfig cfg = MachineConfig::textbook();
    const Cycle ubd = cfg.ubd_analytic();
    ASSERT_EQ(ubd, 6u);
    for (std::uint32_t k = 0; k <= 13; ++k) {
        const Cycle delta = k + 1;  // delta_rsk = 1
        EXPECT_EQ(dominant_gamma(cfg, k), gamma_eq2(delta, ubd))
            << "k = " << k;
    }
}

TEST(Synchrony, RefArchitectureModeGammaIsUbdMinus1) {
    // Section 5.2 / Figure 6(b): with delta_rsk = 1, nearly all requests
    // suffer ubd - 1 = 26 — never 27.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    EXPECT_EQ(dominant_gamma(cfg, 0), cfg.ubd_analytic() - 1);
}

TEST(Synchrony, VarArchitectureModeGammaIsUbdMinus4) {
    // With delta_rsk = 4: ubdm = 27 - 4 = 23 (Figure 6(b) var bar).
    const MachineConfig cfg = MachineConfig::ngmp_var();
    EXPECT_EQ(dominant_gamma(cfg, 0), cfg.ubd_analytic() - 4);
}

TEST(Synchrony, SingleGammaDominates) {
    // "We observe that most of the requests, 98% of them, have the same
    // contention delay": the synchrony effect locks the rotation.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams params;
    params.iterations = 100;
    params.unroll = 32;
    const Program scua = make_rsk(params);
    RskParams cp = params;
    cp.data_base = 0x0800'0000;
    const Measurement m =
        run_contention(cfg, scua, {make_rsk(cp)}, 0, 100'000'000);
    ASSERT_FALSE(m.gamma.empty());
    EXPECT_GE(m.gamma.mode_fraction(), 0.98);
}

class Equation2Sweep
    : public ::testing::TestWithParam<std::tuple<CoreId, Cycle>> {};

TEST_P(Equation2Sweep, GammaMatchesModelAcrossPlatforms) {
    // Property test over (Nc, lbus): for several injection times the
    // dominant simulated contention equals Equation 2.
    const auto [num_cores, lbus] = GetParam();
    const MachineConfig cfg = MachineConfig::scaled(num_cores, lbus);
    const Cycle ubd = ubd_eq1(num_cores, lbus);
    ASSERT_EQ(cfg.ubd_analytic(), ubd);

    for (const std::uint32_t k : {0u, 1u, 3u,
                                  static_cast<std::uint32_t>(ubd - 1),
                                  static_cast<std::uint32_t>(ubd),
                                  static_cast<std::uint32_t>(ubd + 2)}) {
        const Cycle delta = k + 1;
        EXPECT_EQ(dominant_gamma(cfg, k, 40), gamma_eq2(delta, ubd))
            << "Nc=" << num_cores << " lbus=" << lbus << " k=" << k;
    }
}

// Note: Nc = 2 with *load* contenders is excluded on purpose. The
// synchrony effect requires the remaining contenders to keep the bus
// saturated across one contender's re-injection gap, i.e.
// (Nc - 2) * lbus >= delta_rsk; a single load rsk (delta_rsk = 1) leaves
// 1-cycle bus holes that shift the alignment away from Equation 2. The
// dedicated test below pins down that boundary.
INSTANTIATE_TEST_SUITE_P(
    Platforms, Equation2Sweep,
    ::testing::Values(std::make_tuple(3u, Cycle{3}),
                      std::make_tuple(4u, Cycle{2}),
                      std::make_tuple(4u, Cycle{5}),
                      std::make_tuple(4u, Cycle{9}),
                      std::make_tuple(8u, Cycle{2}),
                      std::make_tuple(8u, Cycle{9})));

TEST(Synchrony, TwoCoreSaturationBoundary) {
    // With Nc = 2, a load contender (delta_rsk = 1) cannot saturate the
    // bus: (Nc-2)*lbus = 0 < delta_rsk, so Equation 2 must NOT be assumed.
    const MachineConfig cfg = MachineConfig::scaled(2, 9);
    const Cycle ubd = cfg.ubd_analytic();  // 9

    int load_mismatches = 0;
    int store_mismatches = 0;
    for (std::uint32_t k = 0; k <= 12; k += 2) {
        const Cycle delta = k + 1;
        if (dominant_gamma(cfg, k, 40, OpKind::kLoad) !=
            gamma_eq2(delta, ubd)) {
            ++load_mismatches;
        }
        // Store-rsk contenders drain with delta = 0 (always pending), so
        // the saturation premise holds and Equation 2 applies exactly.
        if (dominant_gamma(cfg, k, 40, OpKind::kStore) !=
            gamma_eq2(delta, ubd)) {
            ++store_mismatches;
        }
    }
    EXPECT_GT(load_mismatches, 0);   // the premise really fails
    EXPECT_EQ(store_mismatches, 0);  // and delta=0 contenders restore it
}

TEST(Synchrony, NoSynchronyUnderTdma) {
    // Ablation: the saw-tooth mechanism is RR-specific. Under TDMA the
    // contention delay is set by slot position, not by RR rotation, so
    // gamma must not follow Equation 2's delta dependence.
    MachineConfig cfg = MachineConfig::textbook();
    cfg.arbiter = ArbiterKind::kTdma;
    cfg.tdma_slot_cycles = 2;  // = lbus
    const Cycle ubd = cfg.ubd_analytic();
    // Under TDMA with slot = lbus a saturated core gets one slot per
    // Nc*lbus cycles; with delta = 1 the wait is Nc*lbus - 1 - lbus + ...
    // — the precise value is schedule math, but it must differ from RR's
    // gamma for at least one delta in a period sweep.
    int mismatches = 0;
    for (std::uint32_t k = 0; k <= 6; ++k) {
        const Cycle delta = k + 1;
        if (dominant_gamma(cfg, k, 40) != gamma_eq2(delta, ubd)) ++mismatches;
    }
    EXPECT_GT(mismatches, 0);
}

}  // namespace
}  // namespace rrb
