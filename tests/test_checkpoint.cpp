// Tests of the checkpoint subsystem: bit-exact codec round trips for
// the accumulator family (empty and NaN-bearing states included), loud
// rejection of truncated / corrupt / mismatched files, and the headline
// contract — a campaign run as 1, 2 or 4 checkpointed slices and merged
// is bit-identical to the monolithic session.pwcet at every jobs value.
#include "stats/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/session.h"
#include "engine/reduce.h"
#include "kernels/autobench.h"
#include "machine/config.h"

namespace rrb {
namespace {

// ----------------------------------------------------- codec round trips

/// Encode -> decode -> encode. Byte equality of the two encodings is a
/// bit-exactness check that needs no accessor for hidden state (m2,
/// NaN payloads): if any field survived only approximately, the second
/// encoding would differ.
template <typename T, typename Load>
std::vector<std::uint8_t> round_trip(const T& value, Load&& load) {
    CheckpointWriter first;
    CheckpointCodec::save(first, value);
    CheckpointReader reader(first.bytes());
    const T reloaded = load(reader);
    EXPECT_EQ(reader.remaining(), 0u);
    CheckpointWriter second;
    CheckpointCodec::save(second, reloaded);
    EXPECT_EQ(first.bytes(), second.bytes());
    return first.bytes();
}

TEST(CheckpointCodec, ExtremesRoundTripIncludingEmpty) {
    StreamingExtremes<Cycle> empty;
    round_trip(empty, [](CheckpointReader& r) {
        return CheckpointCodec::load_extremes(r);
    });

    StreamingExtremes<Cycle> a;
    a.add(7);
    a.add(1902);
    a.add(44);
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_extremes(r);
    });
    CheckpointWriter w;
    CheckpointCodec::save(w, a);
    CheckpointReader r(w.bytes());
    const StreamingExtremes<Cycle> b = CheckpointCodec::load_extremes(r);
    EXPECT_EQ(b.count(), 3u);
    EXPECT_EQ(b.min(), 7u);
    EXPECT_EQ(b.max(), 1902u);
}

TEST(CheckpointCodec, MomentsRoundTripBitExactlyIncludingNaN) {
    StreamingMoments empty;
    round_trip(empty, [](CheckpointReader& r) {
        return CheckpointCodec::load_moments(r);
    });

    StreamingMoments a;
    // Values chosen so mean/m2 are not exactly representable sums —
    // only a bit-pattern round trip reproduces them.
    for (int i = 0; i < 17; ++i) a.add(0.1 * i + 1.0 / 3.0);
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_moments(r);
    });

    StreamingMoments nan_bearing;
    nan_bearing.add(5.0);
    nan_bearing.add(std::numeric_limits<double>::quiet_NaN());
    ASSERT_TRUE(std::isnan(nan_bearing.mean()));
    const std::vector<std::uint8_t> bytes =
        round_trip(nan_bearing, [](CheckpointReader& r) {
            return CheckpointCodec::load_moments(r);
        });
    CheckpointReader r(bytes);
    const StreamingMoments reloaded = CheckpointCodec::load_moments(r);
    EXPECT_TRUE(std::isnan(reloaded.mean()));
    EXPECT_EQ(reloaded.count(), 2u);
}

TEST(CheckpointCodec, BlockMaximaRoundTripWithPartialBlocks) {
    StreamingBlockMaxima empty(8);
    round_trip(empty, [](CheckpointReader& r) {
        return CheckpointCodec::load_block_maxima(r);
    });

    StreamingBlockMaxima a(4);
    for (std::uint64_t i = 0; i < 11; ++i) {  // last block partial
        a.add(i, static_cast<double>((i * 37) % 13));
    }
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_block_maxima(r);
    });
    CheckpointWriter w;
    CheckpointCodec::save(w, a);
    CheckpointReader r(w.bytes());
    const StreamingBlockMaxima b = CheckpointCodec::load_block_maxima(r);
    EXPECT_EQ(b.block_size(), 4u);
    EXPECT_EQ(b.count(), 11u);
    EXPECT_EQ(b.complete_blocks(), 2u);
    EXPECT_EQ(b.maxima(), a.maxima());
}

TEST(CheckpointCodec, PeaksOverThresholdRoundTrip) {
    StreamingPeaksOverThreshold a(100.0);
    for (std::uint64_t i = 0; i < 40; ++i) {
        a.add(i, static_cast<double>((i * 733) % 200));
    }
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_pot(r);
    });
    CheckpointWriter w;
    CheckpointCodec::save(w, a);
    CheckpointReader r(w.bytes());
    const StreamingPeaksOverThreshold b = CheckpointCodec::load_pot(r);
    EXPECT_EQ(b.threshold(), a.threshold());
    EXPECT_EQ(b.count(), a.count());
    EXPECT_EQ(b.exceedances(), a.exceedances());
}

TEST(CheckpointCodec, WhiteboxAccumulatorRoundTrip) {
    WhiteboxAccumulator empty;
    round_trip(empty, [](CheckpointReader& r) {
        return CheckpointCodec::load_whitebox(r);
    });

    WhiteboxAccumulator a;
    for (std::uint64_t run = 0; run < 6; ++run) {
        Measurement m;
        m.exec_time = 1000 + run * 13;
        m.max_gamma = run % 3;
        m.gamma.add(run % 3);
        m.ready_contenders.add(run % 2);
        m.injection_delta.add(5 + run);
        a.add(run, m);
    }
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_whitebox(r);
    });
    CheckpointWriter w;
    CheckpointCodec::save(w, a);
    CheckpointReader r(w.bytes());
    const WhiteboxAccumulator b = CheckpointCodec::load_whitebox(r);
    EXPECT_EQ(b.runs(), a.runs());
    EXPECT_EQ(b.max_gamma(), a.max_gamma());
    EXPECT_EQ(b.gamma().buckets(), a.gamma().buckets());
    EXPECT_EQ(b.exec_times().values(), a.exec_times().values());
    EXPECT_EQ(b.extremes().max(), a.extremes().max());
}

TEST(CheckpointCodec, PwcetAccumulatorRoundTrip) {
    PwcetAccumulator a(4);
    for (std::uint64_t run = 0; run < 10; ++run) {
        Measurement m;
        m.exec_time = 2000 + ((run * 271) % 97);
        a.add(run, m);
    }
    round_trip(a, [](CheckpointReader& r) {
        return CheckpointCodec::load_pwcet(r);
    });
}

TEST(CheckpointCodec, RejectsCorruptAccumulatorState) {
    // min > max
    CheckpointWriter w;
    w.u64(2);
    w.u64(100);
    w.u64(50);
    CheckpointReader r(w.bytes());
    EXPECT_THROW((void)CheckpointCodec::load_extremes(r), CheckpointError);

    // truncated mid-field
    CheckpointWriter short_write;
    short_write.u64(1);
    CheckpointReader short_read(short_write.bytes());
    EXPECT_THROW((void)CheckpointCodec::load_extremes(short_read),
                 CheckpointError);

    // block maxima with zero block size
    CheckpointWriter zero_block;
    zero_block.u64(0);
    zero_block.u64(0);
    zero_block.u64(0);
    CheckpointReader zero_read(zero_block.bytes());
    EXPECT_THROW((void)CheckpointCodec::load_block_maxima(zero_read),
                 CheckpointError);
}

// -------------------------------------------------- campaign checkpoints

Scenario small_scenario(std::uint64_t seed = 7, std::size_t runs = 48) {
    return Scenario::on(MachineConfig::ngmp_ref())
        .scua(make_autobench(Autobench::kTblook, 0x0100'0000, 40, 2))
        .rsk_contenders(OpKind::kLoad)
        .runs(runs)
        .seed(seed);
}

PwcetSpec small_spec() {
    PwcetSpec spec;
    spec.block_size = 8;
    spec.exceedance = {1e-3, 1e-9};
    return spec;
}

std::string temp_path(const std::string& name) {
    return testing::TempDir() + "rrb_ckpt_" + name;
}

PwcetCheckpoint make_checkpoint(std::uint64_t seed = 7,
                                const SliceSpec& slice = {0, 1}) {
    Session session;
    session.jobs(2);
    return session.checkpoint(small_scenario(seed), small_spec(), slice,
                              temp_path("make_" + std::to_string(seed) +
                                        "_" + std::to_string(slice.index)));
}

TEST(PwcetCheckpointFile, EncodeDecodeRoundTripsBitExactly) {
    const PwcetCheckpoint a = make_checkpoint();
    const std::vector<std::uint8_t> first = encode_pwcet_checkpoint(a);
    const PwcetCheckpoint b = decode_pwcet_checkpoint(first);
    EXPECT_EQ(encode_pwcet_checkpoint(b), first);
    EXPECT_EQ(b.meta.scenario_fingerprint, a.meta.scenario_fingerprint);
    EXPECT_EQ(b.meta.total_runs, 48u);
    EXPECT_EQ(b.meta.first_run, 0u);
    EXPECT_EQ(b.meta.last_run, 48u);
    EXPECT_EQ(b.shards.size(), a.shards.size());
}

TEST(PwcetCheckpointFile, RejectsGarbageTruncationAndCorruption) {
    const std::vector<std::uint8_t> bytes =
        encode_pwcet_checkpoint(make_checkpoint());

    // Garbage: not even the magic.
    const std::vector<std::uint8_t> garbage(64, 0xAB);
    EXPECT_THROW((void)decode_pwcet_checkpoint(garbage), CheckpointError);

    // Empty and too-short files.
    EXPECT_THROW((void)decode_pwcet_checkpoint(std::vector<std::uint8_t>{}),
                 CheckpointError);
    EXPECT_THROW(
        (void)decode_pwcet_checkpoint(
            std::span(bytes).subspan(0, 10)),
        CheckpointError);

    // Truncation anywhere: the trailer checksum can no longer match.
    for (const std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t{20}}) {
        EXPECT_THROW(
            (void)decode_pwcet_checkpoint(std::span(bytes).subspan(0, keep)),
            CheckpointError)
            << "kept " << keep << " of " << bytes.size();
    }

    // A single flipped payload byte fails the checksum.
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[bytes.size() / 2] ^= 0x01;
    EXPECT_THROW((void)decode_pwcet_checkpoint(corrupt), CheckpointError);

    // A future format version is rejected even with a valid checksum:
    // re-encode with the version field bumped, then fix the trailer.
    std::vector<std::uint8_t> future = bytes;
    future[8] += 1;  // version is the u32 after the 8-byte magic
    // (checksum now wrong too — still must throw, which is the point)
    EXPECT_THROW((void)decode_pwcet_checkpoint(future), CheckpointError);
}

TEST(PwcetCheckpointFile, RejectsShardRangesThatOverflowThePlan) {
    // first_shard + n_shards must not be checkable by a wrapping sum: a
    // huge first_shard would otherwise pass and index plan-sized
    // coverage tables far out of bounds at merge time.
    PwcetCheckpoint bad = make_checkpoint();
    bad.first_shard = std::numeric_limits<std::uint64_t>::max();
    EXPECT_THROW(
        (void)decode_pwcet_checkpoint(encode_pwcet_checkpoint(bad)),
        CheckpointError);
    bad.first_shard = bad.meta.plan_shards + 1;
    EXPECT_THROW(
        (void)decode_pwcet_checkpoint(encode_pwcet_checkpoint(bad)),
        CheckpointError);
}

TEST(PwcetCheckpointFile, LoadNamesThePathOnFailure) {
    const std::string missing = temp_path("does_not_exist");
    try {
        (void)load_pwcet_checkpoint(missing);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
    }
}

TEST(ScenarioFingerprint, IdentifiesTheCampaign) {
    const std::uint64_t base = small_scenario().fingerprint();
    EXPECT_EQ(small_scenario().fingerprint(), base);  // deterministic
    EXPECT_NE(small_scenario(23).fingerprint(), base);  // seed
    EXPECT_NE(small_scenario(7, 64).fingerprint(), base);  // runs
    EXPECT_NE(small_scenario().max_start_delay(11).fingerprint(), base);
    const Scenario other_platform =
        small_scenario().with_config(MachineConfig::ngmp_var());
    EXPECT_NE(other_platform.fingerprint(), base);  // config
    const Scenario other_contenders =
        small_scenario().rsk_contenders(OpKind::kStore);
    EXPECT_NE(other_contenders.fingerprint(), base);  // contender policy
}

TEST(MergeCheckpoints, RejectsMismatchedDuplicateAndMissingSlices) {
    const PwcetCheckpoint whole = make_checkpoint(7);
    const PwcetCheckpoint other_seed = make_checkpoint(23);
    EXPECT_THROW((void)merge_pwcet_checkpoints({whole, other_seed}),
                 CheckpointError);

    // Duplicate slice: the same shards twice.
    EXPECT_THROW((void)merge_pwcet_checkpoints({whole, whole}),
                 CheckpointError);

    // Missing slice: half a campaign is not a campaign.
    const PwcetCheckpoint half = make_checkpoint(7, {0, 2});
    EXPECT_THROW((void)merge_pwcet_checkpoints({half}), CheckpointError);

    EXPECT_THROW((void)merge_pwcet_checkpoints({}), CheckpointError);
}

// The headline contract (acceptance criterion): for several seeds, a
// campaign run as 1, 2 and 4 checkpointed slices — at jobs 1 and 4 —
// merges to the bit-identical result of the monolithic session.pwcet.
TEST(MergeCheckpoints, SliceThenMergeIsBitIdenticalToMonolithic) {
    for (const std::uint64_t seed : {7ull, 23ull}) {
        const Scenario scenario = small_scenario(seed);
        const PwcetSpec spec = small_spec();

        Session monolithic;
        monolithic.jobs(1);
        const PwcetCampaignResult reference =
            monolithic.pwcet(scenario, spec);

        for (const std::size_t slices : {1u, 2u, 4u}) {
            for (const std::size_t jobs : {1u, 4u}) {
                std::vector<std::string> paths;
                Session worker;
                worker.jobs(jobs);
                for (std::size_t i = 0; i < slices; ++i) {
                    const std::string path = temp_path(
                        "slice_" + std::to_string(seed) + "_" +
                        std::to_string(slices) + "_" +
                        std::to_string(jobs) + "_" + std::to_string(i));
                    (void)worker.checkpoint(scenario, spec,
                                            {i, slices}, path);
                    paths.push_back(path);
                }
                Session merger;
                const MergedPwcetCampaign merged = merger.merge(paths);
                const PwcetCampaignResult& r = merged.result;
                const std::string label =
                    "seed " + std::to_string(seed) + " slices " +
                    std::to_string(slices) + " jobs " +
                    std::to_string(jobs);
                EXPECT_EQ(r.runs, reference.runs) << label;
                EXPECT_EQ(r.et_isolation, reference.et_isolation) << label;
                EXPECT_EQ(r.nr, reference.nr) << label;
                EXPECT_EQ(r.high_water_mark, reference.high_water_mark)
                    << label;
                EXPECT_EQ(r.low_water_mark, reference.low_water_mark)
                    << label;
                // Bit-identical floating point: the merge replays the
                // monolithic fold's exact Chan-merge sequence.
                EXPECT_EQ(r.mean, reference.mean) << label;
                EXPECT_EQ(r.stddev, reference.stddev) << label;
                EXPECT_EQ(r.blocks, reference.blocks) << label;
                EXPECT_EQ(r.live_values, reference.live_values) << label;
                EXPECT_EQ(r.fit.mu, reference.fit.mu) << label;
                EXPECT_EQ(r.fit.beta, reference.fit.beta) << label;
                ASSERT_EQ(r.quantiles.size(), reference.quantiles.size());
                for (std::size_t q = 0; q < r.quantiles.size(); ++q) {
                    EXPECT_EQ(r.quantiles[q].pwcet,
                              reference.quantiles[q].pwcet)
                        << label;
                }
                for (const std::string& path : paths) {
                    std::remove(path.c_str());
                }
            }
        }
    }
}

TEST(SessionResume, CompletesAPartiallyCheckpointedCampaign) {
    const Scenario scenario = small_scenario(11);
    const PwcetSpec spec = small_spec();

    Session monolithic;
    monolithic.jobs(1);
    const PwcetCampaignResult reference = monolithic.pwcet(scenario, spec);

    // Checkpoint slices 0 and 2 of 3; resume must run slice 1 itself.
    Session worker;
    worker.jobs(2);
    const std::string p0 = temp_path("resume_0");
    const std::string p2 = temp_path("resume_2");
    (void)worker.checkpoint(scenario, spec, {0, 3}, p0);
    (void)worker.checkpoint(scenario, spec, {2, 3}, p2);

    Session resumer;
    resumer.jobs(4);
    const PwcetCampaignResult r = resumer.resume(scenario, spec, {p0, p2});
    EXPECT_EQ(r.high_water_mark, reference.high_water_mark);
    EXPECT_EQ(r.mean, reference.mean);
    EXPECT_EQ(r.stddev, reference.stddev);
    EXPECT_EQ(r.fit.mu, reference.fit.mu);
    EXPECT_EQ(r.fit.beta, reference.fit.beta);
    ASSERT_EQ(r.quantiles.size(), reference.quantiles.size());
    EXPECT_EQ(r.quantiles[0].pwcet, reference.quantiles[0].pwcet);

    // The same slice twice is rejected, naming the duplicate shard...
    Session duplicate_resumer;
    EXPECT_THROW((void)duplicate_resumer.resume(scenario, spec, {p0, p0}),
                 CheckpointError);
    // ...and a checkpoint from another campaign is rejected outright.
    Session mismatched_resumer;
    const std::string other = temp_path("resume_other");
    Session other_worker;
    (void)other_worker.checkpoint(small_scenario(99), spec, {0, 3}, other);
    EXPECT_THROW(
        (void)mismatched_resumer.resume(scenario, spec, {other, p2}),
        CheckpointError);

    // Resume with no checkpoints is simply the monolithic campaign.
    Session from_scratch;
    from_scratch.jobs(2);
    const PwcetCampaignResult whole =
        from_scratch.resume(scenario, spec, {});
    EXPECT_EQ(whole.mean, reference.mean);
    EXPECT_EQ(whole.fit.mu, reference.fit.mu);

    std::remove(p0.c_str());
    std::remove(p2.c_str());
    std::remove(other.c_str());
}

// ------------------------------------------------- whitebox checkpoints

void expect_same_whitebox(const WhiteboxAccumulator& a,
                          const WhiteboxAccumulator& b,
                          const std::string& label) {
    EXPECT_EQ(a.runs(), b.runs()) << label;
    EXPECT_EQ(a.max_gamma(), b.max_gamma()) << label;
    EXPECT_EQ(a.gamma().buckets(), b.gamma().buckets()) << label;
    EXPECT_EQ(a.ready_contenders().buckets(),
              b.ready_contenders().buckets())
        << label;
    EXPECT_EQ(a.injection_delta().buckets(), b.injection_delta().buckets())
        << label;
    // Run-ordered series, element for element (exact doubles).
    EXPECT_EQ(a.exec_times().values(), b.exec_times().values()) << label;
    EXPECT_EQ(a.extremes().count(), b.extremes().count()) << label;
    if (!a.extremes().empty() && !b.extremes().empty()) {
        EXPECT_EQ(a.extremes().max(), b.extremes().max()) << label;
        EXPECT_EQ(a.extremes().min(), b.extremes().min()) << label;
    }
}

TEST(WhiteboxCheckpointFile, EncodeDecodeRoundTripsBitExactly) {
    Session session;
    session.jobs(2);
    const WhiteboxCheckpoint a = session.checkpoint(
        small_scenario(), SliceSpec{0, 1}, temp_path("wb_roundtrip"));
    const std::vector<std::uint8_t> first = encode_whitebox_checkpoint(a);
    const WhiteboxCheckpoint b = decode_whitebox_checkpoint(first);
    EXPECT_EQ(encode_whitebox_checkpoint(b), first);
    EXPECT_EQ(b.meta.scenario_fingerprint, a.meta.scenario_fingerprint);
    EXPECT_EQ(b.meta.block_size, 0u);  // no EVT half on whitebox slices
    EXPECT_TRUE(b.meta.exceedance.empty());
    EXPECT_EQ(b.shards.size(), a.shards.size());
    std::remove(temp_path("wb_roundtrip").c_str());
}

TEST(WhiteboxCheckpointFile, PayloadKindsDoNotCrossMerge) {
    // A pwcet checkpoint must never decode as a whitebox one (or vice
    // versa) — same container, tagged payloads.
    const std::vector<std::uint8_t> pwcet_bytes =
        encode_pwcet_checkpoint(make_checkpoint());
    EXPECT_THROW((void)decode_whitebox_checkpoint(pwcet_bytes),
                 CheckpointError);

    Session session;
    const WhiteboxCheckpoint whitebox = session.checkpoint(
        small_scenario(), SliceSpec{0, 1}, temp_path("wb_kind"));
    const std::vector<std::uint8_t> whitebox_bytes =
        encode_whitebox_checkpoint(whitebox);
    EXPECT_THROW((void)decode_pwcet_checkpoint(whitebox_bytes),
                 CheckpointError);
    std::remove(temp_path("wb_kind").c_str());
}

TEST(MergeWhitebox, SliceThenMergeIsBitIdenticalToMonolithic) {
    for (const std::uint64_t seed : {7ull, 23ull}) {
        const Scenario scenario = small_scenario(seed);

        Session monolithic;
        monolithic.jobs(1);
        const engine::WhiteboxCampaignResult reference =
            monolithic.whitebox(scenario);

        for (const std::size_t slices : {1u, 3u}) {
            for (const std::size_t jobs : {1u, 4u}) {
                std::vector<std::string> paths;
                Session worker;
                worker.jobs(jobs);
                for (std::size_t i = 0; i < slices; ++i) {
                    const std::string path = temp_path(
                        "wbslice_" + std::to_string(seed) + "_" +
                        std::to_string(slices) + "_" +
                        std::to_string(jobs) + "_" + std::to_string(i));
                    (void)worker.checkpoint(scenario, {i, slices}, path);
                    paths.push_back(path);
                }
                Session merger;
                const MergedWhiteboxCampaign merged =
                    merger.merge_whitebox(paths);
                const std::string label =
                    "seed " + std::to_string(seed) + " slices " +
                    std::to_string(slices) + " jobs " +
                    std::to_string(jobs);
                EXPECT_EQ(merged.et_isolation, reference.et_isolation)
                    << label;
                EXPECT_EQ(merged.nr, reference.nr) << label;
                expect_same_whitebox(merged.stats, reference.stats, label);
                for (const std::string& path : paths) {
                    std::remove(path.c_str());
                }
            }
        }
    }
}

TEST(MergeWhitebox, RejectsMismatchedAndIncompleteSlices) {
    Session session;
    session.jobs(2);
    const std::string p0 = temp_path("wb_rej_0");
    const std::string p1 = temp_path("wb_rej_1");
    (void)session.checkpoint(small_scenario(7), SliceSpec{0, 2}, p0);
    (void)session.checkpoint(small_scenario(7), SliceSpec{1, 2}, p1);

    // Missing slice.
    Session incomplete;
    EXPECT_THROW((void)incomplete.merge_whitebox({p0}), CheckpointError);
    // Duplicate slice.
    Session duplicated;
    EXPECT_THROW((void)duplicated.merge_whitebox({p0, p0, p1}),
                 CheckpointError);
    // Another campaign's slice.
    const std::string other = temp_path("wb_rej_other");
    Session other_session;
    (void)other_session.checkpoint(small_scenario(99), SliceSpec{1, 2},
                                   other);
    Session mismatched;
    EXPECT_THROW((void)mismatched.merge_whitebox({p0, other}),
                 CheckpointError);
    // A pwcet file in a whitebox merge is rejected by payload kind.
    const std::string pwcet_path = temp_path("wb_rej_pwcet");
    Session pwcet_session;
    pwcet_session.jobs(2);
    (void)pwcet_session.checkpoint(small_scenario(7), small_spec(),
                                   SliceSpec{1, 2}, pwcet_path);
    Session cross;
    EXPECT_THROW((void)cross.merge_whitebox({p0, pwcet_path}),
                 CheckpointError);

    std::remove(p0.c_str());
    std::remove(p1.c_str());
    std::remove(other.c_str());
    std::remove(pwcet_path.c_str());
}

}  // namespace
}  // namespace rrb
