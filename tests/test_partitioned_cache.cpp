#include "cache/partitioned_cache.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

WayPartitionedCache make_l2(CoreId cores = 4) {
    // The paper's L2: 256KB, 4-way, 32B lines, one way per core.
    return WayPartitionedCache({256 * 1024, 4, 32}, cores,
                               ReplacementPolicy::kLru,
                               WritePolicy::kWriteBack,
                               AllocPolicy::kWriteAllocate);
}

TEST(WayPartitionedCache, PartitionGeometryKeepsSets) {
    WayPartitionedCache l2 = make_l2();
    EXPECT_EQ(l2.ways_per_core(), 1u);
    EXPECT_EQ(l2.partition_geometry().num_sets(), 2048u);
    EXPECT_EQ(l2.partition_geometry().size_bytes, 64u * 1024u);
}

TEST(WayPartitionedCache, RejectsUnevenSplit) {
    EXPECT_THROW(WayPartitionedCache({256 * 1024, 4, 32}, 3,
                                     ReplacementPolicy::kLru,
                                     WritePolicy::kWriteBack,
                                     AllocPolicy::kWriteAllocate),
                 std::invalid_argument);
}

TEST(WayPartitionedCache, NoCrossCoreInterference) {
    // "Contention only happens on the bus and the memory controller":
    // core 1 thrashing a set must not evict core 0's line.
    WayPartitionedCache l2 = make_l2();
    const Addr line = 0x1000;
    l2.read(0, line);
    EXPECT_TRUE(l2.probe(0, line));
    const std::uint64_t stride = l2.partition_geometry().set_stride();
    for (int i = 0; i < 64; ++i) {
        l2.read(1, line + static_cast<Addr>(i) * stride);
    }
    EXPECT_TRUE(l2.probe(0, line));
    EXPECT_FALSE(l2.probe(1, line + 63 * stride - stride * 4));
}

TEST(WayPartitionedCache, PerCoreStatsIndependent) {
    WayPartitionedCache l2 = make_l2();
    l2.read(0, 0x0);
    l2.read(0, 0x0);
    l2.read(2, 0x0);
    EXPECT_EQ(l2.stats(0).read_hits, 1u);
    EXPECT_EQ(l2.stats(0).read_misses, 1u);
    EXPECT_EQ(l2.stats(2).read_misses, 1u);
    EXPECT_EQ(l2.stats(1).accesses(), 0u);
    EXPECT_EQ(l2.total_stats().accesses(), 3u);
}

TEST(WayPartitionedCache, RskAddressesAlwaysHitL2Partition) {
    // The rsk's W+1 addresses, one DL1 set-stride (4KB) apart, must all
    // coexist in a core's 64KB direct-mapped L2 partition — the kernel is
    // designed to "miss in DL1 and hit in L2".
    WayPartitionedCache l2 = make_l2();
    const CacheGeometry dl1{16 * 1024, 4, 32};
    for (std::uint32_t i = 0; i <= dl1.ways; ++i) {
        l2.read(0, i * dl1.set_stride());  // cold fills
    }
    for (int round = 0; round < 10; ++round) {
        for (std::uint32_t i = 0; i <= dl1.ways; ++i) {
            EXPECT_TRUE(l2.read(0, i * dl1.set_stride()).hit);
        }
    }
}

TEST(WayPartitionedCache, WriteGoesToOwnPartition) {
    WayPartitionedCache l2 = make_l2();
    l2.write(3, 0x2000);
    EXPECT_TRUE(l2.probe(3, 0x2000));
    EXPECT_FALSE(l2.probe(0, 0x2000));
}

TEST(WayPartitionedCache, CoreIdBoundsChecked) {
    WayPartitionedCache l2 = make_l2();
    EXPECT_THROW(l2.read(4, 0x0), std::invalid_argument);
    EXPECT_THROW((void)l2.stats(7), std::invalid_argument);
}

TEST(WayPartitionedCache, TwoCoreSplitGetsTwoWays) {
    WayPartitionedCache l2 = make_l2(2);
    EXPECT_EQ(l2.ways_per_core(), 2u);
    const std::uint64_t stride = l2.partition_geometry().set_stride();
    // Two lines in the same set coexist (2 ways)...
    l2.read(0, 0x0);
    l2.read(0, stride);
    EXPECT_TRUE(l2.probe(0, 0x0));
    EXPECT_TRUE(l2.probe(0, stride));
    // ...a third evicts the LRU.
    l2.read(0, 2 * stride);
    EXPECT_FALSE(l2.probe(0, 0x0));
}

}  // namespace
}  // namespace rrb
