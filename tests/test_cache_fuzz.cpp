// Differential fuzzing: the set-associative Cache against a naive but
// obviously-correct reference model (per-set list kept in recency order),
// across random address streams and several geometries.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cache/cache.h"
#include "sim/rng.h"

namespace rrb {
namespace {

/// Reference LRU cache: per-set std::list, front = MRU.
class ReferenceLru {
public:
    explicit ReferenceLru(CacheGeometry geometry) : geometry_(geometry) {}

    bool read(Addr addr) {
        auto& set = sets_[geometry_.set_of(addr)];
        const std::uint64_t tag = geometry_.tag_of(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return true;  // hit
            }
        }
        set.push_front(tag);
        if (set.size() > geometry_.ways) set.pop_back();
        return false;  // miss
    }

    [[nodiscard]] bool probe(Addr addr) const {
        const auto it = sets_.find(geometry_.set_of(addr));
        if (it == sets_.end()) return false;
        const std::uint64_t tag = geometry_.tag_of(addr);
        for (const std::uint64_t t : it->second) {
            if (t == tag) return true;
        }
        return false;
    }

private:
    CacheGeometry geometry_;
    std::map<std::uint64_t, std::list<std::uint64_t>> sets_;
};

struct FuzzShape {
    CacheGeometry geometry;
    std::uint64_t seed;
    std::uint64_t footprint;
};

class CacheDifferential : public ::testing::TestWithParam<FuzzShape> {};

TEST_P(CacheDifferential, LruMatchesReferenceOnRandomStream) {
    const FuzzShape shape = GetParam();
    Cache cache(shape.geometry, ReplacementPolicy::kLru,
                WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate);
    ReferenceLru reference(shape.geometry);
    Pcg32 rng(shape.seed);

    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            (rng.next_u32() % shape.footprint) & ~Addr{3};
        const bool ref_hit = reference.read(addr);
        const bool dut_hit = cache.read(addr).hit;
        ASSERT_EQ(dut_hit, ref_hit) << "access " << i << " addr " << addr;
    }

    // Final-state agreement on a sample of addresses.
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = (rng.next_u32() % shape.footprint) & ~Addr{3};
        ASSERT_EQ(cache.probe(addr), reference.probe(addr))
            << "probe " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheDifferential,
    ::testing::Values(FuzzShape{{1024, 2, 32}, 1, 8 * 1024},
                      FuzzShape{{1024, 4, 32}, 2, 8 * 1024},
                      FuzzShape{{16 * 1024, 4, 32}, 3, 64 * 1024},
                      FuzzShape{{4096, 8, 64}, 4, 32 * 1024},
                      FuzzShape{{512, 1, 32}, 5, 4 * 1024},
                      FuzzShape{{2048, 4, 16}, 6, 16 * 1024}));

TEST(CacheProperty, WorkingSetWithinWaysNeverMissesAfterWarmup) {
    // For every geometry: touching at most W distinct same-set lines
    // repeatedly never misses after the first pass (LRU and PLRU).
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::kLru, ReplacementPolicy::kPlru}) {
        const CacheGeometry g{4096, 4, 32};
        Cache c(g, policy, WritePolicy::kWriteBack,
                AllocPolicy::kWriteAllocate);
        Pcg32 rng(77);
        // Warm W lines of one set.
        std::vector<Addr> lines;
        for (std::uint32_t i = 0; i < g.ways; ++i) {
            lines.push_back(0x40 + i * g.set_stride());
            c.read(lines.back());
        }
        c.reset_stats();
        for (int i = 0; i < 5000; ++i) {
            c.read(lines[rng.next_below(
                static_cast<std::uint32_t>(lines.size()))]);
        }
        EXPECT_EQ(c.stats().read_misses, 0u)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(CacheProperty, StatsBalance) {
    // hits + misses == accesses, and evictions <= misses (write-allocate).
    const CacheGeometry g{1024, 2, 32};
    Cache c(g, ReplacementPolicy::kLru, WritePolicy::kWriteBack,
            AllocPolicy::kWriteAllocate);
    Pcg32 rng(13);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = rng.next_u32() % 8192;
        if (rng.next_bool(0.3)) {
            c.write(addr);
        } else {
            c.read(addr);
        }
    }
    const CacheStats& s = c.stats();
    EXPECT_EQ(s.hits() + s.misses(), s.accesses());
    EXPECT_LE(s.evictions, s.misses());
    EXPECT_LE(s.writebacks, s.evictions);
}

}  // namespace
}  // namespace rrb
