#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rrb::cli {
namespace {

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult invoke(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
    const CliResult r = invoke({});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("usage: rrbtool"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
    const CliResult r = invoke({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("estimate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
    const CliResult r = invoke({"frobnicate"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
    const CliResult r = invoke({"estimate", "--bogus"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
    // The offending flag is named, whatever position it appears in.
    EXPECT_NE(r.err.find("--bogus"), std::string::npos);
    const CliResult late = invoke({"campaign", "--runs", "4", "--bogus"});
    EXPECT_EQ(late.code, 1);
    EXPECT_NE(late.err.find("--bogus"), std::string::npos);
}

TEST(Cli, FlagsFromOtherCommandsAreRejectedNotIgnored) {
    // Regression: a known flag that does not apply to the command used
    // to be parsed and silently ignored — `calibrate --runs 5` would
    // report calibration numbers as if a 5-run campaign had happened.
    const CliResult r = invoke({"calibrate", "--runs", "5"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--runs"), std::string::npos);
    EXPECT_NE(r.err.find("calibrate"), std::string::npos);

    EXPECT_EQ(invoke({"estimate", "--jobs", "2"}).code, 1);
    EXPECT_EQ(invoke({"baseline", "--block-size", "4"}).code, 1);
    EXPECT_EQ(invoke({"campaign", "--kmax", "10"}).code, 1);
    EXPECT_EQ(invoke({"campaign", "--cores-axis", "2,4"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--cores", "4"}).code, 1);
}

TEST(Cli, TelemetryFlagsOnlyApplyToCampaignCommands) {
    // --telemetry / --heartbeat describe a running campaign; on a
    // non-campaign command they would silently observe nothing.
    const CliResult r =
        invoke({"estimate", "--telemetry", "out.json"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--telemetry"), std::string::npos);
    EXPECT_NE(r.err.find("estimate"), std::string::npos);
    EXPECT_EQ(invoke({"calibrate", "--heartbeat", "2"}).code, 1);
    EXPECT_EQ(invoke({"baseline", "--telemetry", "t.json"}).code, 1);
    EXPECT_EQ(invoke({"sweep", "--telemetry", "t.json"}).code, 1);
    EXPECT_EQ(invoke({"sweep", "--heartbeat", "1"}).code, 1);
    // merge writes a report but has no live campaign to pulse.
    EXPECT_EQ(invoke({"merge", "--heartbeat", "1"}).code, 1);
    EXPECT_EQ(invoke({"merge-whitebox", "--heartbeat", "1"}).code, 1);
}

TEST(Cli, TelemetryFlagValueValidation) {
    EXPECT_EQ(invoke({"pwcet", "--telemetry"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--heartbeat"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--heartbeat", "abc"}).code, 1);
    const CliResult zero = invoke({"pwcet", "--heartbeat", "0"});
    EXPECT_EQ(zero.code, 1);
    EXPECT_NE(zero.err.find("--heartbeat"), std::string::npos);
}

TEST(Cli, HelpListsTelemetryFlags) {
    const CliResult r = invoke({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("--telemetry"), std::string::npos);
    EXPECT_NE(r.out.find("--heartbeat"), std::string::npos);
}

TEST(Cli, FlagValueValidation) {
    EXPECT_EQ(invoke({"estimate", "--cores"}).code, 1);
    EXPECT_EQ(invoke({"estimate", "--cores", "abc"}).code, 1);
    EXPECT_EQ(invoke({"estimate", "--csv"}).code, 1);
}

TEST(Cli, CalibrateReportsDeltaNop) {
    const CliResult r = invoke({"calibrate"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("delta_nop = 1.0"), std::string::npos);
}

TEST(Cli, CalibrateSlowNop) {
    const CliResult r = invoke({"calibrate", "--nop-latency", "3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("delta_nop = 3.0"), std::string::npos);
}

TEST(Cli, EstimateOnSmallPlatform) {
    // A small platform keeps the test fast: ubd = (2-1)*... use 4x5=15.
    const CliResult r = invoke({"estimate", "--cores", "4", "--lbus", "5",
                                "--kmax", "40", "--iterations", "20"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("ubd = 15 cycles"), std::string::npos);
}

TEST(Cli, EstimateTooShortSweepExitsTwo) {
    const CliResult r = invoke({"estimate", "--kmax", "8",
                                "--iterations", "10"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.out.find("no saw-tooth period"), std::string::npos);
}

TEST(Cli, BaselineReportsUnderestimate) {
    const CliResult r = invoke({"baseline", "--iterations", "40"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("ubdm(max observed delay) = 26"),
              std::string::npos);
    EXPECT_NE(r.out.find("true ubd = 27"), std::string::npos);
}

TEST(Cli, BaselineVarArchitecture) {
    const CliResult r = invoke({"baseline", "--var", "--iterations", "40"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("ubdm(max observed delay) = 23"),
              std::string::npos);
}

TEST(Cli, CampaignReportsBoundedHwm) {
    const CliResult r = invoke({"campaign", "--runs", "4", "--jobs", "2",
                                "--iterations", "20"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("campaign: 4 runs on 2 jobs"), std::string::npos);
    EXPECT_NE(r.out.find("4/4 (100%)"), std::string::npos);
    EXPECT_NE(r.out.find("hwm = "), std::string::npos);
    EXPECT_NE(r.out.find("bounded: yes"), std::string::npos);
}

TEST(Cli, CampaignJobCountDoesNotChangeResults) {
    const CliResult serial = invoke({"campaign", "--runs", "4", "--jobs",
                                     "1", "--iterations", "20"});
    const CliResult wide = invoke({"campaign", "--runs", "4", "--jobs",
                                   "4", "--iterations", "20"});
    EXPECT_EQ(serial.code, 0);
    EXPECT_EQ(wide.code, 0);
    // Everything after the header line (which names the job count) is
    // identical: sharding must not change the numbers.
    EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
              wide.out.substr(wide.out.find('\n')));
}

TEST(Cli, CampaignValidatesRuns) {
    const CliResult r = invoke({"campaign", "--runs", "0"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--runs"), std::string::npos);
}

TEST(Cli, HelpListsPwcetCommandAndFlags) {
    const CliResult r = invoke({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("pwcet"), std::string::npos);
    EXPECT_NE(r.out.find("--block-size"), std::string::npos);
    EXPECT_NE(r.out.find("--exceedance"), std::string::npos);
}

TEST(Cli, PwcetReportsStreamedCampaign) {
    const CliResult r = invoke({"pwcet", "--runs", "24", "--block-size",
                                "4", "--jobs", "2", "--iterations", "20",
                                "--exceedance", "1e-9"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("pwcet: 24 runs in blocks of 4 on 2 jobs"),
              std::string::npos);
    // The progress counter covered every run.
    EXPECT_NE(r.out.find("24/24 (100%)"), std::string::npos);
    // Streamed memory evidence: 6 blocks live, not 24 values.
    EXPECT_NE(r.out.find("streamed: 6 live values for 24 runs"),
              std::string::npos);
    EXPECT_NE(r.out.find("gumbel: mu = "), std::string::npos);
    EXPECT_NE(r.out.find("pwcet@1e-09 = "), std::string::npos);
    EXPECT_NE(r.out.find("hwm bounded: yes"), std::string::npos);
}

TEST(Cli, PwcetJobCountDoesNotChangeResults) {
    const CliResult serial = invoke({"pwcet", "--runs", "24",
                                     "--block-size", "4", "--jobs", "1",
                                     "--iterations", "20"});
    const CliResult wide = invoke({"pwcet", "--runs", "24",
                                   "--block-size", "4", "--jobs", "8",
                                   "--iterations", "20"});
    EXPECT_EQ(serial.code, 0);
    EXPECT_EQ(wide.code, 0);
    // Everything after the header line (which names the job count) is
    // identical — including the Chan-merged mean/stddev and the fit:
    // the shard plan depends on runs, never jobs.
    EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
              wide.out.substr(wide.out.find('\n')));
}

TEST(Cli, PwcetDefaultRunsFillWholeBlocks) {
    // The pwcet default must produce a valid fit out of the box — the
    // campaign command's 20-run default would not even fill one
    // 50-run block. Default here is 40 blocks.
    const CliResult r = invoke({"pwcet", "--iterations", "20"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("pwcet: 2000 runs in blocks of 50"),
              std::string::npos);
    EXPECT_NE(r.out.find("gumbel: mu = "), std::string::npos);
}

TEST(Cli, PwcetDegenerateFitExitsThree) {
    // One block -> fewer than two block maxima -> no valid fit. Exit 3
    // keeps "not enough data" distinct from "bound violated" (exit 2).
    const CliResult r = invoke({"pwcet", "--runs", "4", "--block-size",
                                "4", "--iterations", "20"});
    EXPECT_EQ(r.code, 3);
    EXPECT_NE(r.out.find("degenerate"), std::string::npos);
}

TEST(Cli, PwcetValidatesFlags) {
    EXPECT_EQ(invoke({"pwcet", "--runs", "0"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--block-size", "0"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--block-size"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--block-size", "abc"}).code, 1);
    const CliResult bad = invoke({"pwcet", "--exceedance", "2.0"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("--exceedance"), std::string::npos);
    EXPECT_EQ(invoke({"pwcet", "--exceedance", "nope"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--exceedance"}).code, 1);
}

TEST(Cli, PwcetShardWritesACheckpointAndMergeReproducesTheReference) {
    const std::string dir = testing::TempDir();
    // The single-process reference: everything after its header line is
    // the contract the merged report must reproduce byte for byte.
    const CliResult reference =
        invoke({"pwcet", "--runs", "64", "--block-size", "8", "--jobs",
                "2", "--iterations", "20", "--seed", "9"});
    EXPECT_EQ(reference.code, 0);

    std::vector<std::string> merge_args = {"merge"};
    for (const char* shard : {"0/2", "1/2"}) {
        const std::string path =
            dir + "rrb_cli_shard_" + std::string(1, shard[0]) + ".ckpt";
        const CliResult r =
            invoke({"pwcet", "--runs", "64", "--block-size", "8", "--jobs",
                    "2", "--iterations", "20", "--seed", "9", "--shard",
                    shard, "--checkpoint-out", path});
        EXPECT_EQ(r.code, 0) << r.err;
        EXPECT_NE(r.out.find("checkpoint written to " + path),
                  std::string::npos);
        merge_args.push_back(path);
    }

    const CliResult merged = invoke(merge_args);
    EXPECT_EQ(merged.code, 0) << merged.err;
    EXPECT_NE(merged.out.find("merge: 2 checkpoints, 64 runs"),
              std::string::npos);
    EXPECT_EQ(merged.out.substr(merged.out.find('\n')),
              reference.out.substr(reference.out.find('\n')));

    for (std::size_t i = 1; i < merge_args.size(); ++i) {
        std::remove(merge_args[i].c_str());
    }
}

TEST(Cli, PwcetShardValidation) {
    // Malformed or out-of-range specs fail naming --shard.
    for (const char* bad : {"abc", "1", "1/", "/4", "2/2", "5/4", "1/0"}) {
        const CliResult r = invoke({"pwcet", "--shard", bad,
                                    "--checkpoint-out", "/tmp/x.ckpt"});
        EXPECT_EQ(r.code, 1) << bad;
        EXPECT_NE(r.err.find("--shard"), std::string::npos) << bad;
    }
    EXPECT_EQ(invoke({"pwcet", "--shard"}).code, 1);
    EXPECT_EQ(invoke({"pwcet", "--checkpoint-out"}).code, 1);
    // A slice without a checkpoint file would be thrown away — refuse,
    // naming both flags.
    const CliResult no_out = invoke({"pwcet", "--runs", "8", "--shard",
                                     "0/2"});
    EXPECT_EQ(no_out.code, 1);
    EXPECT_NE(no_out.err.find("--checkpoint-out"), std::string::npos);
    // Shard flags belong to pwcet only.
    EXPECT_EQ(invoke({"campaign", "--shard", "0/2"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--checkpoint-out", "x"}).code, 1);
}

TEST(Cli, MergeValidation) {
    const CliResult none = invoke({"merge"});
    EXPECT_EQ(none.code, 1);
    EXPECT_NE(none.err.find("at least one checkpoint"), std::string::npos);

    // An unreadable file exits non-zero naming the path.
    const CliResult missing = invoke({"merge", "/tmp/rrb_no_such.ckpt"});
    EXPECT_EQ(missing.code, 1);
    EXPECT_NE(missing.err.find("/tmp/rrb_no_such.ckpt"),
              std::string::npos);

    // Garbage bytes are rejected as corrupt, naming the path.
    const std::string garbage = testing::TempDir() + "rrb_garbage.ckpt";
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "this is not a checkpoint";
    }
    const CliResult bad = invoke({"merge", garbage});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find(garbage), std::string::npos);
    std::remove(garbage.c_str());

    // Flags are rejected: merge takes checkpoint files only.
    EXPECT_EQ(invoke({"merge", "--jobs", "2"}).code, 1);

    // The same file twice is rejected up front, before any I/O, naming
    // the repeated argument.
    const std::string path = testing::TempDir() + "rrb_dup.ckpt";
    EXPECT_EQ(invoke({"pwcet", "--runs", "16", "--block-size", "4",
                      "--iterations", "20", "--shard", "0/2",
                      "--checkpoint-out", path})
                  .code,
              0);
    const CliResult dup = invoke({"merge", path, path});
    EXPECT_EQ(dup.code, 1);
    EXPECT_NE(dup.err.find("duplicate checkpoint file"),
              std::string::npos);
    EXPECT_NE(dup.err.find(path), std::string::npos);

    // Distinct files carrying the same slice still reach the codec's
    // duplicate-coverage check.
    const std::string copy = testing::TempDir() + "rrb_dup_copy.ckpt";
    {
        std::ifstream src(path, std::ios::binary);
        std::ofstream dst(copy, std::ios::binary);
        dst << src.rdbuf();
    }
    const CliResult same_slice = invoke({"merge", path, copy});
    EXPECT_EQ(same_slice.code, 1);
    EXPECT_NE(same_slice.err.find("duplicate slice"), std::string::npos);
    std::remove(copy.c_str());

    // A lone half-campaign is incomplete.
    const CliResult half = invoke({"merge", path});
    EXPECT_EQ(half.code, 1);
    EXPECT_NE(half.err.find("incomplete campaign"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, MergeWhiteboxValidation) {
    // Zero inputs and duplicate file arguments are usage errors for the
    // white-box merge too — same guard, same message shape.
    const CliResult none = invoke({"merge-whitebox"});
    EXPECT_EQ(none.code, 1);
    EXPECT_NE(none.err.find("at least one checkpoint"), std::string::npos);

    const std::string path = testing::TempDir() + "rrb_wb_dup.ckpt";
    EXPECT_EQ(invoke({"whitebox", "--runs", "8", "--iterations", "15",
                      "--shard", "0/2", "--checkpoint-out", path})
                  .code,
              0);
    const CliResult dup = invoke({"merge-whitebox", path, path});
    EXPECT_EQ(dup.code, 1);
    EXPECT_NE(dup.err.find("duplicate checkpoint file"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, WhiteboxReportsDelayHistogramsVsUbd) {
    const CliResult r = invoke({"whitebox", "--runs", "6", "--jobs", "2",
                                "--iterations", "15"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("whitebox: 6 runs"), std::string::npos);
    EXPECT_NE(r.out.find("max gamma ="), std::string::npos);
    EXPECT_NE(r.out.find("bounded: yes"), std::string::npos);
    EXPECT_NE(r.out.find("ready contenders:"), std::string::npos);
}

TEST(Cli, WhiteboxShardAndMergeWhiteboxReproduceTheReference) {
    const std::string dir = testing::TempDir();
    const CliResult reference =
        invoke({"whitebox", "--runs", "24", "--jobs", "2", "--iterations",
                "15", "--seed", "9"});
    EXPECT_EQ(reference.code, 0);

    std::vector<std::string> merge_args = {"merge-whitebox"};
    for (const char* shard : {"0/3", "1/3", "2/3"}) {
        const std::string path =
            dir + "rrb_cli_wb_shard_" + std::string(1, shard[0]) + ".ckpt";
        const CliResult r =
            invoke({"whitebox", "--runs", "24", "--jobs", "2",
                    "--iterations", "15", "--seed", "9", "--shard", shard,
                    "--checkpoint-out", path});
        EXPECT_EQ(r.code, 0) << r.err;
        EXPECT_NE(r.out.find("checkpoint written to " + path),
                  std::string::npos);
        merge_args.push_back(path);
    }

    const CliResult merged = invoke(merge_args);
    EXPECT_EQ(merged.code, 0) << merged.err;
    EXPECT_NE(merged.out.find("merge-whitebox: 3 checkpoints, 24 runs"),
              std::string::npos);
    // Byte-identical from line 2: the distributed fan-in reproduces the
    // single-process report exactly.
    EXPECT_EQ(merged.out.substr(merged.out.find('\n')),
              reference.out.substr(reference.out.find('\n')));

    for (std::size_t i = 1; i < merge_args.size(); ++i) {
        std::remove(merge_args[i].c_str());
    }
}

TEST(Cli, MergeWhiteboxRejectsPwcetCheckpoints) {
    const std::string dir = testing::TempDir();
    const std::string path = dir + "rrb_cli_wb_cross.ckpt";
    const CliResult made =
        invoke({"pwcet", "--runs", "16", "--block-size", "4", "--jobs",
                "2", "--iterations", "15", "--shard", "0/1",
                "--checkpoint-out", path});
    ASSERT_EQ(made.code, 0) << made.err;
    const CliResult crossed = invoke({"merge-whitebox", path});
    EXPECT_EQ(crossed.code, 1);
    EXPECT_NE(crossed.err.find("pwcet"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, WhiteboxValidatesFlags) {
    // pwcet-only flags do not leak into whitebox.
    EXPECT_EQ(invoke({"whitebox", "--block-size", "8"}).code, 1);
    EXPECT_EQ(invoke({"whitebox", "--exceedance", "1e-6"}).code, 1);
    // Shard spec validation matches pwcet's.
    const CliResult bad = invoke({"whitebox", "--shard", "3/2",
                                  "--checkpoint-out", "/tmp/x.ckpt"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("--shard"), std::string::npos);
    // merge-whitebox needs files.
    EXPECT_EQ(invoke({"merge-whitebox"}).code, 1);
}

TEST(Cli, PositionalArgumentsAreRejectedOutsideMerge) {
    const CliResult r = invoke({"pwcet", "stray.ckpt"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("stray.ckpt"), std::string::npos);
}

TEST(Cli, SweepPwcetRunsAConfigGrid) {
    const CliResult r = invoke({"sweep-pwcet", "--cores-axis", "2,4",
                                "--lbus-axis", "5", "--runs", "16",
                                "--block-size", "4", "--jobs", "2",
                                "--iterations", "20", "--exceedance",
                                "1e-6"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("sweep-pwcet: 2 configs x 16 runs"),
              std::string::npos);
    EXPECT_NE(r.out.find("pwcet@1e-06"), std::string::npos);
    // One row per grid point, cores-major.
    EXPECT_NE(r.out.find("\n2 5 rr "), std::string::npos);
    EXPECT_NE(r.out.find("\n4 5 rr "), std::string::npos);
}

TEST(Cli, SweepPwcetJobCountDoesNotChangeResults) {
    const std::vector<std::string> base = {
        "sweep-pwcet", "--cores-axis", "2,4",  "--lbus-axis", "5,9",
        "--runs",      "16",           "--block-size", "4",
        "--iterations", "20"};
    auto with_jobs = [&base](const char* jobs) {
        std::vector<std::string> args = base;
        args.emplace_back("--jobs");
        args.emplace_back(jobs);
        return args;
    };
    const CliResult serial = invoke(with_jobs("1"));
    const CliResult wide = invoke(with_jobs("8"));
    EXPECT_EQ(serial.code, 0);
    EXPECT_EQ(wide.code, 0);
    // Everything after the header line (which names the job count) is
    // identical: the nested campaigns shard deterministically.
    EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
              wide.out.substr(wide.out.find('\n')));
}

TEST(Cli, SweepPwcetArbiterAxis) {
    const CliResult r = invoke({"sweep-pwcet", "--arbiter-axis",
                                "rr,tdma", "--runs", "8", "--block-size",
                                "4", "--iterations", "20"});
    // TDMA isolates cores from alignment, so its campaign can have zero
    // spread — a (correct) degenerate fit exits 3; never a bound
    // violation (2) or a usage error (1).
    EXPECT_TRUE(r.code == 0 || r.code == 3) << "code " << r.code;
    EXPECT_NE(r.out.find(" rr "), std::string::npos);
    EXPECT_NE(r.out.find(" tdma "), std::string::npos);
    // Non-RR rows carry no Equation-1 bound verdict.
    EXPECT_NE(r.out.find("n/a"), std::string::npos);
}

TEST(Cli, SweepPwcetValidatesFlags) {
    EXPECT_EQ(invoke({"sweep-pwcet", "--cores-axis"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--cores-axis", "2,x"}).code, 1);
    // A value that would truncate into CoreId must fail the parse, not
    // silently run some other grid (4294967298 would truncate to 2).
    EXPECT_EQ(invoke({"sweep-pwcet", "--cores-axis", "4294967298"}).code,
              1);
    // A trailing comma is a half-typed list, not a shorter one.
    EXPECT_EQ(invoke({"sweep-pwcet", "--cores-axis", "2,"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--arbiter-axis", "rr,"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--arbiter-axis", "bogus"}).code, 1);
    EXPECT_EQ(invoke({"sweep-pwcet", "--runs", "0"}).code, 1);
    const CliResult bad = invoke({"sweep-pwcet", "--arbiter-axis", "rr,nope"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("nope"), std::string::npos);
}

TEST(Cli, HelpListsSweepPwcet) {
    const CliResult r = invoke({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("sweep-pwcet"), std::string::npos);
    EXPECT_NE(r.out.find("--cores-axis"), std::string::npos);
    EXPECT_NE(r.out.find("--arbiter-axis"), std::string::npos);
}

TEST(Cli, SweepEmitsCsv) {
    const CliResult r = invoke({"sweep", "--cores", "4", "--lbus", "2",
                                "--kmax", "14", "--iterations", "15"});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out.rfind("index,dbus\n", 0), 0u);
    // 15 data rows (k = 0..14).
    EXPECT_NE(r.out.find("\n14,"), std::string::npos);
}

TEST(Cli, SweepToFile) {
    const std::string path = "/tmp/rrbtool_sweep_test.csv";
    const CliResult r = invoke({"sweep", "--cores", "4", "--lbus", "2",
                                "--kmax", "14", "--iterations", "15",
                                "--csv", path});
    EXPECT_EQ(r.code, 0);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "index,dbus");
    std::remove(path.c_str());
}

TEST(Cli, EstimateWithStoreSpanCrossCheck) {
    const CliResult r = invoke({"estimate", "--cores", "4", "--lbus", "5",
                                "--kmax", "40", "--iterations", "15",
                                "--store-span"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("AGREE"), std::string::npos);
    EXPECT_NE(r.out.find("ubd = 15"), std::string::npos);
}

TEST(Cli, SingleRunCommandsReportMeasurements) {
    const CliResult isol = invoke({"isolation"});
    EXPECT_EQ(isol.code, 0) << isol.err;
    EXPECT_NE(isol.out.find("isolation: et = "), std::string::npos);
    EXPECT_NE(isol.out.find("nr = "), std::string::npos);

    const CliResult cont = invoke({"contention"});
    EXPECT_EQ(cont.code, 0) << cont.err;
    EXPECT_NE(cont.out.find("contention: et = "), std::string::npos);
    EXPECT_NE(cont.out.find("bounded: yes"), std::string::npos);

    const CliResult slow = invoke({"slowdown"});
    EXPECT_EQ(slow.code, 0) << slow.err;
    EXPECT_NE(slow.out.find("det = "), std::string::npos);
    EXPECT_NE(slow.out.find("bounded: yes"), std::string::npos);
    // Campaign-only flags stay campaign-only.
    EXPECT_EQ(invoke({"isolation", "--runs", "5"}).code, 1);
    EXPECT_EQ(invoke({"slowdown", "--jobs", "2"}).code, 1);
}

TEST(Cli, SingleRunCommandsAcceptTelemetry) {
    const std::string path = "/tmp/rrbtool_isolation_report.json";
    const CliResult off = invoke({"isolation"});
    const CliResult on =
        invoke({"isolation", "--telemetry", path, "--heartbeat", "5"});
    EXPECT_EQ(on.code, 0) << on.err;
    // Telemetry stays out-of-band on the single-run commands too.
    EXPECT_EQ(off.out, on.out);
    std::ifstream in(path);
    std::stringstream report;
    report << in.rdbuf();
    EXPECT_NE(report.str().find("\"command\": \"isolation\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, AttributionReportsCauseTableAndBlameMatrix) {
    const CliResult r = invoke({"attribution", "--runs", "6"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("attribution: 6 runs"), std::string::npos);
    EXPECT_NE(r.out.find("cycles by cause"), std::string::npos);
    EXPECT_NE(r.out.find("\nbus_wait "), std::string::npos);
    EXPECT_NE(r.out.find("blame matrix"), std::string::npos);
    EXPECT_NE(r.out.find("core0 stall share:"), std::string::npos);
}

TEST(Cli, AttributionJobCountDoesNotChangeResults) {
    const CliResult serial =
        invoke({"attribution", "--runs", "12", "--jobs", "1"});
    const CliResult parallel =
        invoke({"attribution", "--runs", "12", "--jobs", "3"});
    EXPECT_EQ(serial.code, parallel.code);
    // Everything after the header line (which names the jobs count) is
    // identical: the accumulator is an exact integer sum in shard order.
    EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
              parallel.out.substr(parallel.out.find('\n')));
}

TEST(Cli, TraceFlagWritesChromeTraceWithoutTouchingStdout) {
    const std::string path = "/tmp/rrbtool_trace_test.json";
    const CliResult off = invoke({"campaign", "--runs", "6"});
    const CliResult on =
        invoke({"campaign", "--runs", "6", "--trace", path});
    EXPECT_EQ(off.code, on.code);
    EXPECT_EQ(off.out, on.out);
    std::ifstream in(path);
    std::stringstream trace;
    trace << in.rdbuf();
    EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.str().find("\"bus service\""), std::string::npos);
    EXPECT_NE(trace.str().find("session.hwm"), std::string::npos);
    std::remove(path.c_str());
    // --trace is a campaign flag: rejected elsewhere, value required.
    EXPECT_EQ(invoke({"estimate", "--trace", "t.json"}).code, 1);
    EXPECT_EQ(invoke({"campaign", "--trace"}).code, 1);
}

TEST(Cli, TelemetryDiffReportsDeltasAndGatesRegressions) {
    const std::string path_a = "/tmp/rrbtool_diff_a.json";
    const std::string path_b = "/tmp/rrbtool_diff_b.json";
    ASSERT_EQ(invoke({"campaign", "--runs", "8", "--telemetry", path_a})
                  .code,
              0);
    ASSERT_EQ(invoke({"campaign", "--runs", "8", "--telemetry", path_b})
                  .code,
              0);
    const CliResult diff = invoke({"telemetry-diff", path_a, path_b});
    EXPECT_EQ(diff.code, 0) << diff.err;
    EXPECT_NE(diff.out.find("counters:"), std::string::npos);
    EXPECT_NE(diff.out.find("runs_completed: 8 -> 8 (+0)"),
              std::string::npos);
    EXPECT_NE(diff.out.find("runs_per_sec"), std::string::npos);

    // Identical counters can't regress: a generous gate passes...
    const CliResult pass = invoke({"telemetry-diff", path_a, path_b,
                                   "--max-regression-pct", "1000"});
    EXPECT_EQ(pass.code, 0);
    EXPECT_NE(pass.out.find("gate: no rate regression"),
              std::string::npos);
    // ...and a doctored report trips exit 3.
    std::ifstream in(path_b);
    std::stringstream doctored;
    doctored << in.rdbuf();
    std::string text = doctored.str();
    const std::size_t at = text.find("\"runs_per_sec\": ");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, text.find(',', at) - at, "\"runs_per_sec\": 0.5");
    const std::string path_c = "/tmp/rrbtool_diff_c.json";
    std::ofstream(path_c) << text;
    const CliResult fail = invoke({"telemetry-diff", path_a, path_c,
                                   "--max-regression-pct", "5"});
    EXPECT_EQ(fail.code, 3);
    EXPECT_NE(fail.out.find("regression: runs_per_sec"),
              std::string::npos);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(path_c.c_str());
}

TEST(Cli, TelemetryDiffValidation) {
    // Wrong arity, unreadable files and non-report files all fail
    // loudly before any numbers are printed.
    EXPECT_EQ(invoke({"telemetry-diff", "only_one.json"}).code, 1);
    const CliResult missing = invoke(
        {"telemetry-diff", "/tmp/rrbtool_nope_a.json",
         "/tmp/rrbtool_nope_b.json"});
    EXPECT_EQ(missing.code, 1);
    EXPECT_NE(missing.err.find("could not read"), std::string::npos);
    const std::string bogus = "/tmp/rrbtool_diff_bogus.json";
    std::ofstream(bogus) << "{\"schema\": \"something-else\"}\n";
    const CliResult wrong = invoke({"telemetry-diff", bogus, bogus});
    EXPECT_EQ(wrong.code, 1);
    EXPECT_NE(wrong.err.find("not an rrb-telemetry run report"),
              std::string::npos);
    std::remove(bogus.c_str());
    EXPECT_EQ(invoke({"telemetry-diff", "a", "b", "--max-regression-pct",
                      "abc"})
                  .code,
              1);
    EXPECT_EQ(invoke({"telemetry-diff", "a", "b", "--max-regression-pct",
                      "-2"})
                  .code,
              1);
    // The gate flag belongs to telemetry-diff alone.
    EXPECT_EQ(invoke({"campaign", "--max-regression-pct", "5"}).code, 1);
}

TEST(Cli, HelpListsNewCommands) {
    const CliResult r = invoke({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("attribution"), std::string::npos);
    EXPECT_NE(r.out.find("isolation"), std::string::npos);
    EXPECT_NE(r.out.find("slowdown"), std::string::npos);
    EXPECT_NE(r.out.find("telemetry-diff"), std::string::npos);
    EXPECT_NE(r.out.find("--trace"), std::string::npos);
    EXPECT_NE(r.out.find("--max-regression-pct"), std::string::npos);
}

}  // namespace
}  // namespace rrb::cli
