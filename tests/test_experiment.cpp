// Tests of the measurement harness itself: warm-up discipline,
// determinism, deadline handling, and PMC plumbing.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/machine.h"

namespace rrb {
namespace {

Program small_rsk(std::uint64_t iterations = 20) {
    RskParams p;
    p.unroll = 4;
    p.iterations = iterations;
    return make_rsk(p);
}

TEST(Experiment, IsolationIsDeterministic) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Measurement a = run_isolation(cfg, small_rsk());
    const Measurement b = run_isolation(cfg, small_rsk());
    EXPECT_EQ(a.exec_time, b.exec_time);
    EXPECT_EQ(a.bus_requests, b.bus_requests);
}

TEST(Experiment, ContentionIsDeterministic) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams cp;
    cp.data_base = 0x0800'0000;
    const std::vector<Program> contenders = {make_rsk(cp)};
    const Measurement a = run_contention(cfg, small_rsk(), contenders);
    const Measurement b = run_contention(cfg, small_rsk(), contenders);
    EXPECT_EQ(a.exec_time, b.exec_time);
    EXPECT_EQ(a.max_gamma, b.max_gamma);
}

TEST(Experiment, ContentionNeverFasterThanIsolation) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (const Autobench kernel :
         {Autobench::kCacheb, Autobench::kTblook, Autobench::kMatrix}) {
        const Program scua = make_autobench(kernel, 0x0100'0000, 100, 3);
        const SlowdownResult r = run_slowdown(
            cfg, scua, {small_rsk()});
        EXPECT_GE(r.contention.exec_time, r.isolation.exec_time)
            << to_string(kernel);
    }
}

TEST(Experiment, WarmupRemovesColdIfetchRequests) {
    // The static-footprint warm-up must eliminate every cold code/data
    // miss for an rsk (fixed addresses): the request count becomes
    // exactly loads + boundary effects.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program rsk = small_rsk(10);
    const Measurement m = run_isolation(cfg, rsk);
    const std::uint64_t loads = rsk.body.size() * rsk.iterations;
    EXPECT_EQ(m.bus_requests, loads);
}

TEST(Experiment, DeadlineReportedNotFabricated) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Measurement m = run_isolation(cfg, small_rsk(1'000'000), 0, 1000);
    EXPECT_TRUE(m.deadline_reached);
    EXPECT_EQ(m.exec_time, 1000u);
}

TEST(Experiment, ScuaCoreSelectable) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams cp;
    cp.data_base = 0x0800'0000;
    const Measurement m =
        run_contention(cfg, small_rsk(), {make_rsk(cp)}, /*scua_core=*/2);
    EXPECT_GT(m.bus_requests, 0u);
    EXPECT_FALSE(m.gamma.empty());
}

TEST(Experiment, ScuaCoreOutOfRangeRejected) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    EXPECT_THROW(run_isolation(cfg, small_rsk(), 7), std::invalid_argument);
    EXPECT_THROW(run_contention(cfg, small_rsk(), {small_rsk()}, 9),
                 std::invalid_argument);
}

TEST(Experiment, NoContendersRejected) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    EXPECT_THROW(run_contention(cfg, small_rsk(), {}),
                 std::invalid_argument);
}

TEST(Experiment, FewerContendersThanCoresAreCycled) {
    // One contender program, three contender cores: the program must be
    // replicated across all of them.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams cp;
    cp.data_base = 0x0800'0000;
    const Measurement m =
        run_contention(cfg, small_rsk(50), {make_rsk(cp)});
    // With all three contender cores running rsk, nearly every scua
    // request sees 3 ready contenders.
    EXPECT_GE(m.ready_contenders.fraction(3), 0.9);
}

TEST(Experiment, UtilizationPmcsConsistent) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams cp;
    cp.data_base = 0x0800'0000;
    const Measurement m = run_contention(cfg, small_rsk(80), {make_rsk(cp)});
    EXPECT_GT(m.bus_utilization, 0.9);
    EXPECT_GT(m.scua_bus_share, 0.1);
    EXPECT_LE(m.scua_bus_share, m.bus_utilization);
}

TEST(Experiment, InjectionDeltaHistogramExposed) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Measurement m = run_isolation(cfg, small_rsk(30));
    ASSERT_FALSE(m.injection_delta.empty());
    EXPECT_EQ(m.injection_delta.mode(), cfg.core.dl1_latency);
}

TEST(Experiment, MachineRunsAreIndependent) {
    // Two machines built from one config must not share state.
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    Machine m1(cfg);
    Machine m2(cfg);
    m1.load_program(0, small_rsk(5));
    m2.load_program(0, small_rsk(5));
    m1.warm_static_footprint(0);
    const RunResult r1 = m1.run(1'000'000);
    const RunResult r2 = m2.run(1'000'000);
    // m2 was not warmed: cold misses make it slower.
    EXPECT_LT(r1.finish_cycle[0], r2.finish_cycle[0]);
}

}  // namespace
}  // namespace rrb
