#include "dram/dram.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

DramConfig small_config() {
    DramConfig cfg;
    cfg.capacity_bytes = 1 << 20;
    return cfg;
}

class DramTest : public ::testing::Test, protected DramClient {
protected:
    DramTest() : mc_(small_config()) { mc_.attach_client(this); }

    void dram_complete(const DramRequest& r, Cycle done) override {
        completions_.push_back({r.addr, done});
    }

    void run_to(Cycle end) {
        for (; now_ <= end; ++now_) mc_.tick(now_);
    }

    void enqueue(Addr addr, Cycle arrival, bool write = false, CoreId core = 0) {
        mc_.enqueue({core, addr, write, arrival, 0});
    }

    MemoryController mc_;
    Cycle now_ = 0;
    std::vector<std::pair<Addr, Cycle>> completions_;
};

TEST_F(DramTest, ColdAccessIsRowMiss) {
    enqueue(0x0, 0);
    run_to(50);
    ASSERT_EQ(completions_.size(), 1u);
    const DramTiming t;
    // overhead + tRCD + tCL + burst
    EXPECT_EQ(completions_[0].second,
              t.t_overhead + t.t_rcd + t.t_cl + t.t_burst);
    EXPECT_EQ(mc_.stats().row_misses, 1u);
}

TEST_F(DramTest, SameRowSecondAccessIsHit) {
    enqueue(0x0, 0);
    run_to(30);
    enqueue(0x0 + 32 * 4, 31);  // same bank (stride = banks*access), same row
    run_to(60);
    ASSERT_EQ(completions_.size(), 2u);
    EXPECT_EQ(mc_.stats().row_hits, 1u);
    const DramTiming t;
    EXPECT_EQ(completions_[1].second, 31 + t.t_overhead + t.t_cl + t.t_burst);
}

TEST_F(DramTest, DifferentRowSameBankIsConflict) {
    const DramConfig cfg = small_config();
    enqueue(0x0, 0);
    run_to(30);
    // Same bank, different row: jump a full row*banks span.
    enqueue(cfg.row_bytes * cfg.num_banks, 31);
    run_to(80);
    ASSERT_EQ(completions_.size(), 2u);
    EXPECT_EQ(mc_.stats().row_conflicts, 1u);
    const DramTiming t;
    EXPECT_EQ(completions_[1].second,
              31 + t.t_overhead + t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
}

TEST_F(DramTest, ConsecutiveLinesHitDifferentBanks) {
    const DramConfig cfg = small_config();
    EXPECT_NE(cfg.bank_of(0), cfg.bank_of(32));
    EXPECT_EQ(cfg.bank_of(0), cfg.bank_of(32 * 4));
}

TEST_F(DramTest, FrFcfsPrefersRowHit) {
    // Open a row in bank 0, then queue: conflict (bank 0, other row) ahead
    // of a row hit (bank 0, open row). FR-FCFS must serve the hit first.
    const DramConfig cfg = small_config();
    enqueue(0x0, 0);
    run_to(11);  // completes at 10
    const Addr conflict = cfg.row_bytes * cfg.num_banks;  // bank0, row 1
    const Addr hit = 32 * 4;                              // bank0, row 0
    enqueue(conflict, 12);
    enqueue(hit, 12);
    run_to(100);
    ASSERT_EQ(completions_.size(), 3u);
    EXPECT_EQ(completions_[1].first, hit);
    EXPECT_EQ(completions_[2].first, conflict);
}

TEST_F(DramTest, FcfsKeepsArrivalOrder) {
    DramConfig cfg = small_config();
    cfg.scheduling = DramScheduling::kFcfs;
    MemoryController mc(cfg);
    struct Client final : DramClient {
        std::vector<Addr> order;
        void dram_complete(const DramRequest& r, Cycle) override {
            order.push_back(r.addr);
        }
    } client;
    mc.attach_client(&client);
    mc.enqueue({0, 0x0, false, 0, 0});
    const Addr conflict = cfg.row_bytes * cfg.num_banks;
    mc.enqueue({0, conflict, false, 0, 0});
    mc.enqueue({0, 32 * 4, false, 0, 0});  // row 0 hit, arrived later
    for (Cycle now = 0; now <= 120; ++now) mc.tick(now);
    ASSERT_EQ(client.order.size(), 3u);
    EXPECT_EQ(client.order[1], conflict);
}

TEST_F(DramTest, BankParallelismOverlapsButDataBusSerializes) {
    // Two requests to different banks arriving together: the second's
    // completion is pushed by the shared data bus, not a full latency.
    enqueue(0x0, 0);    // bank 0
    enqueue(0x20, 0);   // bank 1
    run_to(60);
    ASSERT_EQ(completions_.size(), 2u);
    const Cycle first = completions_[0].second;
    const Cycle second = completions_[1].second;
    EXPECT_GT(second, first);
}

TEST_F(DramTest, WriteCounted) {
    enqueue(0x40, 0, /*write=*/true);
    run_to(30);
    EXPECT_EQ(mc_.stats().writes, 1u);
    EXPECT_EQ(mc_.stats().reads, 0u);
}

TEST_F(DramTest, LatencyStats) {
    enqueue(0x0, 0);
    run_to(30);
    EXPECT_GT(mc_.stats().mean_latency(), 0.0);
    EXPECT_EQ(mc_.stats().latency.total(), 1u);
}

TEST_F(DramTest, IdleWhenDrained) {
    EXPECT_TRUE(mc_.idle());
    enqueue(0x0, 0);
    EXPECT_FALSE(mc_.idle());
    run_to(30);
    EXPECT_TRUE(mc_.idle());
}

TEST_F(DramTest, RejectsOutOfCapacity) {
    EXPECT_THROW(enqueue(small_config().capacity_bytes, 0),
                 std::invalid_argument);
}

TEST(DramConfig, ValidationRejectsBadShapes) {
    DramConfig cfg;
    cfg.num_banks = 3;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.row_bytes = 24;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(DramConfig, RowMappingConsistency) {
    const DramConfig cfg;
    // Addresses within one row of one bank share row_of.
    EXPECT_EQ(cfg.row_of(0), cfg.row_of(32 * 4));
    EXPECT_NE(cfg.row_of(0), cfg.row_of(cfg.row_bytes * cfg.num_banks));
}

}  // namespace
}  // namespace rrb
