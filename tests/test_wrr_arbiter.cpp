#include "bus/arbiter.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

std::vector<ArbCandidate> ready_set(CoreId n,
                                    std::initializer_list<CoreId> ready) {
    std::vector<ArbCandidate> cs(n);
    for (const CoreId c : ready) cs[c] = {true, 2};
    return cs;
}

TEST(WeightedRR, UnitWeightsBehaveLikePlainRR) {
    // Differential test: with all weights 1 the grant sequence must be
    // identical to RoundRobinArbiter under any ready pattern.
    WeightedRoundRobinArbiter wrr({1, 1, 1, 1});
    RoundRobinArbiter rr(4);
    const std::vector<std::vector<CoreId>> patterns = {
        {0, 1, 2, 3}, {1, 3}, {2}, {0, 2, 3}, {0, 1, 2, 3}, {3}};
    for (const auto& ready : patterns) {
        std::vector<ArbCandidate> cs(4);
        for (const CoreId c : ready) cs[c] = {true, 2};
        const auto a = wrr.pick(cs, 0);
        const auto b = rr.pick(cs, 0);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
            EXPECT_EQ(*a, *b);
            wrr.granted(*a, 0);
            rr.granted(*b, 0);
        }
    }
}

TEST(WeightedRR, HeadKeepsCreditsWorthOfGrants) {
    WeightedRoundRobinArbiter wrr({2, 1, 1});
    const auto cs = ready_set(3, {0, 1, 2});
    // Core 0 wins twice (weight 2), then 1, then 2, then 0 again.
    const CoreId expected[] = {0, 0, 1, 2, 0, 0, 1};
    for (const CoreId want : expected) {
        const auto got = wrr.pick(cs, 0);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, want);
        wrr.granted(*got, 0);
    }
}

TEST(WeightedRR, WorkConservingStealDoesNotBurnCredits) {
    WeightedRoundRobinArbiter wrr({2, 1});
    // Head (0) idle; core 1 steals; head keeps both credits.
    EXPECT_EQ(wrr.pick(ready_set(2, {1}), 0), CoreId{1});
    wrr.granted(1, 0);
    EXPECT_EQ(wrr.credits_left(), 2u);
    EXPECT_EQ(wrr.head(), 0u);
    const auto cs = ready_set(2, {0, 1});
    EXPECT_EQ(wrr.pick(cs, 1), CoreId{0});
    wrr.granted(0, 1);
    EXPECT_EQ(wrr.pick(cs, 2), CoreId{0});  // second credit
}

TEST(WeightedRR, WorstCaseWindow) {
    WeightedRoundRobinArbiter wrr({2, 1, 3, 1});
    EXPECT_EQ(wrr.worst_case_window(0), 5u);  // 1+3+1
    EXPECT_EQ(wrr.worst_case_window(2), 4u);  // 2+1+1
    EXPECT_THROW((void)wrr.worst_case_window(4), std::invalid_argument);
}

TEST(WeightedRR, ResetRestoresInitialState) {
    WeightedRoundRobinArbiter wrr({2, 1});
    wrr.granted(0, 0);
    wrr.reset();
    EXPECT_EQ(wrr.head(), 0u);
    EXPECT_EQ(wrr.credits_left(), 2u);
}

TEST(WeightedRR, RejectsZeroWeight) {
    EXPECT_THROW(WeightedRoundRobinArbiter({1, 0, 1}),
                 std::invalid_argument);
    EXPECT_THROW(WeightedRoundRobinArbiter({}), std::invalid_argument);
}

TEST(WeightedRR, FactoryDefaultsToUnitWeights) {
    const auto a = make_arbiter(ArbiterKind::kWeightedRoundRobin, 3);
    EXPECT_EQ(a->name(), "weighted-round-robin");
}

TEST(WeightedRR, FactoryValidatesWeightCount) {
    EXPECT_THROW(
        make_arbiter(ArbiterKind::kWeightedRoundRobin, 3, 0, {1, 2}),
        std::invalid_argument);
}

TEST(WeightedRR, SaturatedWindowMatchesWorstCase) {
    // With every core always ready, core i waits exactly
    // worst_case_window(i) grants between two of its own turns.
    WeightedRoundRobinArbiter wrr({2, 1, 1, 2});
    const auto cs = ready_set(4, {0, 1, 2, 3});
    std::vector<CoreId> sequence;
    for (int i = 0; i < 60; ++i) {
        const auto got = wrr.pick(cs, 0);
        ASSERT_TRUE(got.has_value());
        sequence.push_back(*got);
        wrr.granted(*got, 0);
    }
    // Count the gap (in grants) between the LAST grant of core 1's burst
    // and its next grant: must equal worst_case_window(1) = 5.
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        if (sequence[i] == 1) positions.push_back(i);
    }
    ASSERT_GE(positions.size(), 3u);
    for (std::size_t i = 1; i + 1 < positions.size(); ++i) {
        EXPECT_EQ(positions[i + 1] - positions[i], 6u);  // window + own grant
    }
}

}  // namespace
}  // namespace rrb
